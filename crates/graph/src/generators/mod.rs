//! Synthetic graph generators.
//!
//! The UniNet paper evaluates on eleven real-world datasets (Table V), ranging
//! from BlogCatalog (10K nodes) to Web-UK (6.6 billion edges). Those datasets
//! are not redistributable here, so this module provides generators whose
//! outputs have the structural properties the paper's samplers are sensitive
//! to: skewed degree distributions (R-MAT / Barabási–Albert), controllable
//! mean degree, edge-weight skew, node/edge types for heterogeneous models,
//! and planted community structure with ground-truth labels for the node
//! classification experiments (Figure 5).
//!
//! [`DatasetSpec`] provides named presets that mirror the *shape* of the
//! paper's datasets at laptop scale.

pub mod barabasi_albert;
pub mod erdos_renyi;
pub mod labeled;
pub mod rmat;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use labeled::{planted_partition, LabeledGraph, PlantedPartitionConfig};
pub use rmat::{rmat, RmatConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{GraphBuilder, NodeId};

/// Assigns random node types to an existing graph, following the procedure
/// the paper borrows from KnightKing for heterogenizing large networks
/// ("we adopt the method in work \[35\] to randomly generate type information").
pub fn assign_random_node_types(graph: &Graph, num_types: u16, seed: u64) -> Vec<u16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..graph.num_nodes())
        .map(|_| rng.gen_range(0..num_types))
        .collect()
}

/// Rebuilds a graph with the given node types and randomly assigned edge
/// types, producing a heterogeneous version of a homogeneous graph.
pub fn heterogenize(graph: &Graph, num_node_types: u16, num_edge_types: u16, seed: u64) -> Graph {
    let node_types = assign_random_node_types(graph, num_node_types, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = GraphBuilder::with_capacity(graph.num_edges());
    for (src, dst, w) in graph.all_edges() {
        let et = if num_edge_types > 0 {
            rng.gen_range(0..num_edge_types)
        } else {
            0
        };
        b.add_typed_edge(src, dst, w, et);
    }
    b.set_node_types(node_types);
    b.set_num_nodes(graph.num_nodes());
    // all_edges already contains both directions for symmetric graphs
    b.build()
}

/// Reweights a graph's edges by drawing weights from a power-law-ish
/// distribution `w = (1 - u)^(-1/alpha)` (Pareto), producing the skewed
/// unnormalized transition distributions under which the M-H initialization
/// strategies differ (Theorem 3).
pub fn skew_weights(graph: &Graph, alpha: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(graph.num_edges());
    for (src, dst, _) in graph.all_edges() {
        let u: f64 = rng.gen_range(0.0..1.0);
        let w = (1.0 - u).powf(-1.0 / alpha) as f32;
        b.add_edge(src, dst, w.max(1e-3));
    }
    b.set_num_nodes(graph.num_nodes());
    b.build()
}

/// Named dataset presets mirroring the shape (|V|, mean degree, #types) of the
/// paper's Table V at configurable scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// BlogCatalog-like: 10.3K nodes, mean degree ~65, homogeneous.
    BlogCatalogLike,
    /// Flickr-like: 80.5K nodes, mean degree ~147, homogeneous.
    FlickrLike,
    /// Amazon-like: 335K nodes, mean degree ~5.7, homogeneous.
    AmazonLike,
    /// Reddit-like: 231K nodes, mean degree ~50, homogeneous.
    RedditLike,
    /// YouTube-like: 1.1M nodes, mean degree ~5.3, homogeneous.
    YouTubeLike,
    /// LiveJournal-like: 4.8M nodes, mean degree ~18, homogeneous.
    LiveJournalLike,
    /// Twitter-like: 41.6M nodes, mean degree ~70, homogeneous (billion-edge in the paper).
    TwitterLike,
    /// Web-UK-like: 105.9M nodes, mean degree ~63, homogeneous (billion-edge in the paper).
    WebUkLike,
    /// ACM-like: 11.2K nodes, mean degree ~3.1, 3 node types.
    AcmLike,
    /// DBLP-like: 37.8K nodes, mean degree ~9, 3 node types.
    DblpLike,
    /// DBIS-like: 134.1K nodes, mean degree ~4, 3 node types.
    DbisLike,
    /// AMiner-like: 4.9M nodes, mean degree ~5.1, 3 node types.
    AminerLike,
}

impl DatasetSpec {
    /// All presets, in Table V order.
    pub const ALL: [DatasetSpec; 12] = [
        DatasetSpec::BlogCatalogLike,
        DatasetSpec::FlickrLike,
        DatasetSpec::AmazonLike,
        DatasetSpec::RedditLike,
        DatasetSpec::YouTubeLike,
        DatasetSpec::LiveJournalLike,
        DatasetSpec::TwitterLike,
        DatasetSpec::WebUkLike,
        DatasetSpec::AcmLike,
        DatasetSpec::DblpLike,
        DatasetSpec::DbisLike,
        DatasetSpec::AminerLike,
    ];

    /// Display name matching Table V.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::BlogCatalogLike => "BlogCatalog",
            DatasetSpec::FlickrLike => "Flickr",
            DatasetSpec::AmazonLike => "Amazon",
            DatasetSpec::RedditLike => "Reddit",
            DatasetSpec::YouTubeLike => "YouTube",
            DatasetSpec::LiveJournalLike => "LiveJournal",
            DatasetSpec::TwitterLike => "Twitter",
            DatasetSpec::WebUkLike => "Web-UK",
            DatasetSpec::AcmLike => "ACM",
            DatasetSpec::DblpLike => "DBLP",
            DatasetSpec::DbisLike => "DBIS",
            DatasetSpec::AminerLike => "AMiner",
        }
    }

    /// Target node count of the real dataset (Table V).
    pub fn paper_num_nodes(&self) -> usize {
        match self {
            DatasetSpec::BlogCatalogLike => 10_300,
            DatasetSpec::FlickrLike => 80_500,
            DatasetSpec::AmazonLike => 335_000,
            DatasetSpec::RedditLike => 231_000,
            DatasetSpec::YouTubeLike => 1_100_000,
            DatasetSpec::LiveJournalLike => 4_800_000,
            DatasetSpec::TwitterLike => 41_600_000,
            DatasetSpec::WebUkLike => 105_900_000,
            DatasetSpec::AcmLike => 11_200,
            DatasetSpec::DblpLike => 37_800,
            DatasetSpec::DbisLike => 134_100,
            DatasetSpec::AminerLike => 4_900_000,
        }
    }

    /// Mean degree of the real dataset (Table V).
    pub fn paper_mean_degree(&self) -> f64 {
        match self {
            DatasetSpec::BlogCatalogLike => 64.9,
            DatasetSpec::FlickrLike => 146.6,
            DatasetSpec::AmazonLike => 5.67,
            DatasetSpec::RedditLike => 50.21,
            DatasetSpec::YouTubeLike => 5.3,
            DatasetSpec::LiveJournalLike => 17.8,
            DatasetSpec::TwitterLike => 69.7,
            DatasetSpec::WebUkLike => 62.6,
            DatasetSpec::AcmLike => 3.11,
            DatasetSpec::DblpLike => 9.04,
            DatasetSpec::DbisLike => 3.96,
            DatasetSpec::AminerLike => 5.10,
        }
    }

    /// Number of node types (Table V).
    pub fn num_node_types(&self) -> u16 {
        match self {
            DatasetSpec::AcmLike
            | DatasetSpec::DblpLike
            | DatasetSpec::DbisLike
            | DatasetSpec::AminerLike => 3,
            _ => 1,
        }
    }

    /// Whether the preset corresponds to one of the paper's billion-edge graphs.
    pub fn is_billion_edge(&self) -> bool {
        matches!(self, DatasetSpec::TwitterLike | DatasetSpec::WebUkLike)
    }

    /// Generates a synthetic stand-in for this dataset.
    ///
    /// `scale` in (0, 1] shrinks the node count relative to the real dataset
    /// (mean degree is preserved), so large presets remain tractable.
    /// Heterogeneous presets get 3 node types and 4 edge types.
    pub fn generate(&self, scale: f64, seed: u64) -> Graph {
        let n = ((self.paper_num_nodes() as f64 * scale).round() as usize).max(64);
        let mean_degree = self.paper_mean_degree();
        let edges = ((n as f64 * mean_degree) / 2.0).round() as usize;
        let cfg = RmatConfig {
            num_nodes: n,
            num_edges: edges.max(n),
            a: 0.57,
            b: 0.19,
            c: 0.19,
            weighted: true,
            seed,
        };
        let g = rmat(&cfg);
        if self.num_node_types() > 1 {
            heterogenize(&g, self.num_node_types(), 4, seed ^ 0x5151)
        } else {
            g
        }
    }
}

/// Generates a small deterministic "ring + chords" graph, handy for tests and
/// examples: node `i` connects to `i±1` and `i±2` (mod n).
pub fn ring_with_chords(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(2 * n);
    for i in 0..n {
        let j = (i + 1) % n;
        let k = (i + 2) % n;
        b.add_edge(
            i as NodeId,
            j as NodeId,
            1.0 + rng.gen_range(0.0..1.0) as f32,
        );
        b.add_edge(
            i as NodeId,
            k as NodeId,
            1.0 + rng.gen_range(0.0..1.0) as f32,
        );
    }
    b.symmetric(true).dedup(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_node_types_in_range() {
        let g = ring_with_chords(50, 1);
        let types = assign_random_node_types(&g, 3, 7);
        assert_eq!(types.len(), 50);
        assert!(types.iter().all(|&t| t < 3));
        // With 50 nodes and 3 types, all types should appear.
        for t in 0..3u16 {
            assert!(types.contains(&t), "type {t} missing");
        }
    }

    #[test]
    fn heterogenize_preserves_structure() {
        let g = ring_with_chords(40, 2);
        let h = heterogenize(&g, 3, 4, 11);
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.num_edges(), g.num_edges());
        assert!(h.is_heterogeneous());
        assert!(h.num_edge_types() > 0);
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(h.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn skew_weights_changes_weights_not_structure() {
        let g = ring_with_chords(30, 3);
        let s = skew_weights(&g, 1.5, 4);
        assert_eq!(s.num_edges(), g.num_edges());
        assert!(!s.is_unweighted());
        let stats = crate::GraphStats::compute(&s);
        assert!(stats.weight_skew > 1.0);
    }

    #[test]
    fn dataset_specs_generate_scaled_graphs() {
        let spec = DatasetSpec::BlogCatalogLike;
        let g = spec.generate(0.05, 9);
        assert!(g.num_nodes() >= 64);
        assert!(g.num_edges() > g.num_nodes());
        assert_eq!(spec.num_node_types(), 1);
        assert!(!spec.is_billion_edge());
        assert!(DatasetSpec::TwitterLike.is_billion_edge());
    }

    #[test]
    fn heterogeneous_spec_has_types() {
        let g = DatasetSpec::AcmLike.generate(0.2, 10);
        assert!(g.is_heterogeneous());
        assert_eq!(g.num_node_types(), 3);
    }

    #[test]
    fn all_specs_have_names_and_stats() {
        for spec in DatasetSpec::ALL {
            assert!(!spec.name().is_empty());
            assert!(spec.paper_num_nodes() > 0);
            assert!(spec.paper_mean_degree() > 0.0);
        }
    }

    #[test]
    fn ring_with_chords_is_connectedish() {
        let g = ring_with_chords(20, 5);
        assert_eq!(g.num_nodes(), 20);
        for v in 0..20u32 {
            assert!(g.degree(v) >= 3, "node {v} has degree {}", g.degree(v));
        }
    }
}
