//! R-MAT (recursive matrix) generator, the standard tool for producing
//! synthetic graphs with heavy-tailed degree distributions at scale (the
//! Graph500 generator). Used here as the stand-in for the paper's large
//! social/web graphs (Flickr, LiveJournal, Twitter, Web-UK).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{GraphBuilder, NodeId};

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// Number of nodes; rounded up to the next power of two internally for the
    /// recursive bisection, then ids are mapped back into `0..num_nodes`.
    pub num_nodes: usize,
    /// Number of undirected edges to generate (the CSR graph stores 2x).
    pub num_edges: usize,
    /// Probability of recursing into the top-left quadrant (default 0.57).
    pub a: f64,
    /// Probability for the top-right quadrant (default 0.19).
    pub b: f64,
    /// Probability for the bottom-left quadrant (default 0.19).
    pub c: f64,
    /// Draw edge weights uniformly from (0.5, 2.0) instead of 1.0.
    pub weighted: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            num_nodes: 1024,
            num_edges: 8192,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            weighted: false,
            seed: 42,
        }
    }
}

/// Generates an R-MAT graph according to `cfg`.
pub fn rmat(cfg: &RmatConfig) -> Graph {
    assert!(cfg.num_nodes >= 2);
    assert!(
        cfg.a + cfg.b + cfg.c < 1.0,
        "quadrant probabilities must sum below 1"
    );
    let levels = (usize::BITS - (cfg.num_nodes - 1).leading_zeros()) as usize;
    let size = 1usize << levels;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(cfg.num_edges);
    builder.set_num_nodes(cfg.num_nodes);

    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    let mut generated = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.num_edges * 10 + 1000;
    while generated < cfg.num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut lo_r, mut hi_r) = (0usize, size);
        let (mut lo_c, mut hi_c) = (0usize, size);
        // Add a little noise per level to avoid exact self-similar artifacts.
        for _ in 0..levels {
            let noise = rng.gen_range(-0.02f64..0.02);
            let a = (cfg.a + noise).clamp(0.05, 0.9);
            let b = cfg.b;
            let c = cfg.c;
            let d = (d - noise).max(0.01);
            let total = a + b + c + d;
            let r: f64 = rng.gen_range(0.0..total);
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if r < a {
                hi_r = mid_r;
                hi_c = mid_c;
            } else if r < a + b {
                hi_r = mid_r;
                lo_c = mid_c;
            } else if r < a + b + c {
                lo_r = mid_r;
                hi_c = mid_c;
            } else {
                lo_r = mid_r;
                lo_c = mid_c;
            }
        }
        let u = lo_r % cfg.num_nodes;
        let v = lo_c % cfg.num_nodes;
        if u == v {
            continue;
        }
        let w = if cfg.weighted {
            rng.gen_range(0.5..2.0)
        } else {
            1.0
        };
        builder.add_edge(u as NodeId, v as NodeId, w);
        generated += 1;
    }
    builder.symmetric(true).dedup(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeHistogram;

    #[test]
    fn default_config_generates() {
        let g = rmat(&RmatConfig::default());
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 10_000);
    }

    #[test]
    fn skewed_degrees() {
        let cfg = RmatConfig {
            num_nodes: 4096,
            num_edges: 40_000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert!(g.max_degree() as f64 > 5.0 * g.mean_degree());
        let h = DegreeHistogram::compute(&g);
        assert!(h.buckets.len() > 4);
    }

    #[test]
    fn weighted_edges() {
        let cfg = RmatConfig {
            num_nodes: 256,
            num_edges: 2000,
            weighted: true,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert!(!g.is_unweighted());
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            num_nodes: 512,
            num_edges: 4000,
            seed: 123,
            ..Default::default()
        };
        let a = rmat(&cfg);
        let b = rmat(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..512u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn non_power_of_two_node_count() {
        let cfg = RmatConfig {
            num_nodes: 1000,
            num_edges: 5000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert_eq!(g.num_nodes(), 1000);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.5,
            b: 0.3,
            c: 0.3,
            ..Default::default()
        };
        let _ = rmat(&cfg);
    }
}
