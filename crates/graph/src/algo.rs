//! Basic graph algorithms used by the evaluation harness and by tests:
//! breadth-first search and connected components. Random-walk corpora only
//! cover the component their start nodes live in, so component information is
//! needed both to validate generated datasets and to interpret accuracy
//! numbers on them.

use crate::csr::Graph;
use crate::NodeId;

/// BFS distances (in hops) from `source`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![u32::MAX; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components of an undirected graph (directions are ignored only if
/// the graph was built symmetric; for directed CSR this computes forward
/// reachability components).
///
/// Returns `(component_id_per_node, number_of_components)`.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut component = vec![u32::MAX; n];
    let mut next_id = 0u32;
    let mut stack = Vec::new();
    for start in 0..n as NodeId {
        if component[start as usize] != u32::MAX {
            continue;
        }
        component[start as usize] = next_id;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in graph.neighbors(v) {
                if component[u as usize] == u32::MAX {
                    component[u as usize] = next_id;
                    stack.push(u);
                }
            }
        }
        next_id += 1;
    }
    (component, next_id as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(graph: &Graph) -> usize {
    let (component, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for c in component {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two triangles plus an isolated node.
    fn two_components() -> Graph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.set_num_nodes(7);
        b.symmetric(true).build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.symmetric(true).build();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = two_components();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[6], u32::MAX);
    }

    #[test]
    fn components_are_counted() {
        let g = two_components();
        let (component, count) = connected_components(&g);
        assert_eq!(count, 3); // two triangles + isolated node 6
        assert_eq!(component[0], component[1]);
        assert_eq!(component[0], component[2]);
        assert_eq!(component[3], component[4]);
        assert_ne!(component[0], component[3]);
        assert_ne!(component[6], component[0]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn generated_graphs_are_mostly_connected() {
        let g = crate::generators::barabasi_albert(500, 3, false, 3);
        assert_eq!(largest_component_size(&g), 500);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }
}
