//! Compressed-sparse-row (CSR) graph storage.
//!
//! The layout follows Section IV-C of the UniNet paper: a node offset array
//! plus an edge array; weighted networks allocate one additional `f32` per
//! edge, heterogeneous networks allocate one type id per node (and optionally
//! one per edge for edge2vec-style models).

use crate::edge::EdgeRef;
use crate::hetero::TypeRegistry;
use crate::{EdgeIdx, NodeId};

/// An in-memory network stored in CSR format.
///
/// All adjacency lists are sorted by destination node id, which allows
/// `has_edge` to run in `O(log deg)` — exactly the binary search used by the
/// node2vec dynamic-weight computation in the paper's complexity analysis.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` is the range of v's out-edges. Length = |V| + 1.
    offsets: Vec<usize>,
    /// Destination node of each edge. Length = |E|.
    neighbors: Vec<NodeId>,
    /// Static weight of each edge. Length = |E|.
    weights: Vec<f32>,
    /// Node type per node (empty for homogeneous graphs).
    node_types: Vec<u16>,
    /// Edge type per edge (empty when edges are untyped).
    edge_types: Vec<u16>,
    /// Number of distinct node types (1 for homogeneous graphs).
    num_node_types: u16,
    /// Number of distinct edge types (0 when edges are untyped).
    num_edge_types: u16,
    /// Optional registry of human-readable type names.
    type_registry: TypeRegistry,
    /// True if every stored weight equals 1.0.
    unweighted: bool,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays.
    ///
    /// This is used by [`crate::GraphBuilder`] and by the binary snapshot
    /// loader; most users should go through the builder instead.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        weights: Vec<f32>,
        node_types: Vec<u16>,
        edge_types: Vec<u16>,
        num_node_types: u16,
        num_edge_types: u16,
        type_registry: TypeRegistry,
    ) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        let num_edges = *offsets.last().unwrap();
        assert_eq!(neighbors.len(), num_edges, "neighbors length mismatch");
        assert_eq!(weights.len(), num_edges, "weights length mismatch");
        if !node_types.is_empty() {
            assert_eq!(
                node_types.len(),
                offsets.len() - 1,
                "node_types length mismatch"
            );
        }
        if !edge_types.is_empty() {
            assert_eq!(edge_types.len(), num_edges, "edge_types length mismatch");
        }
        let unweighted = weights.iter().all(|&w| w == 1.0);
        Graph {
            offsets,
            neighbors,
            weights,
            node_types,
            edge_types,
            num_node_types: num_node_types.max(1),
            num_edge_types,
            type_registry,
            unweighted,
        }
    }

    /// Number of nodes |V|.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges |E| stored in the CSR arrays.
    ///
    /// Undirected networks built with `GraphBuilder::symmetric(true)` store
    /// each edge twice, matching the convention of the paper's Table V.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum out-degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// The global edge-index range `[start, end)` of node `v`'s adjacency list.
    #[inline]
    pub fn edge_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Slice of neighbor node ids of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.edge_range(v)]
    }

    /// Slice of static edge weights of `v`'s out-edges.
    #[inline]
    pub fn weights(&self, v: NodeId) -> &[f32] {
        &self.weights[self.edge_range(v)]
    }

    /// Slice of edge types of `v`'s out-edges.
    ///
    /// Returns an empty slice if the graph has no edge types.
    #[inline]
    pub fn edge_types_of(&self, v: NodeId) -> &[u16] {
        if self.edge_types.is_empty() {
            &[]
        } else {
            &self.edge_types[self.edge_range(v)]
        }
    }

    /// The `k`-th out-neighbor of `v` (0-based position in the adjacency list).
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, k: usize) -> NodeId {
        self.neighbors[self.offsets[v as usize] + k]
    }

    /// The static weight of the `k`-th out-edge of `v`.
    #[inline]
    pub fn weight_at(&self, v: NodeId, k: usize) -> f32 {
        self.weights[self.offsets[v as usize] + k]
    }

    /// The edge type of the `k`-th out-edge of `v`, or `u16::MAX` if untyped.
    #[inline]
    pub fn edge_type_at(&self, v: NodeId, k: usize) -> u16 {
        if self.edge_types.is_empty() {
            u16::MAX
        } else {
            self.edge_types[self.offsets[v as usize] + k]
        }
    }

    /// A full [`EdgeRef`] view of the `k`-th out-edge of `v`.
    #[inline]
    pub fn edge_ref(&self, v: NodeId, k: usize) -> EdgeRef {
        let global = self.offsets[v as usize] + k;
        EdgeRef {
            src: v,
            dst: self.neighbors[global],
            weight: self.weights[global],
            local_idx: k as u32,
            global_idx: global,
        }
    }

    /// Iterator over all out-edges of `v` as [`EdgeRef`]s.
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let start = self.offsets[v as usize];
        self.neighbors(v)
            .iter()
            .enumerate()
            .map(move |(k, &dst)| EdgeRef {
                src: v,
                dst,
                weight: self.weights[start + k],
                local_idx: k as u32,
                global_idx: start + k,
            })
    }

    /// Iterator over every directed edge `(src, dst, weight)` in the graph.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |v| self.edges_of(v).map(move |e| (v, e.dst, e.weight)))
    }

    /// Returns `true` if there is an edge from `u` to `dst`.
    ///
    /// `O(log deg(u))` thanks to sorted adjacency lists; this is the primitive
    /// used by node2vec's `d(u, s) == 1` test.
    #[inline]
    pub fn has_edge(&self, u: NodeId, dst: NodeId) -> bool {
        self.neighbors(u).binary_search(&dst).is_ok()
    }

    /// Returns the local index of `dst` inside `u`'s adjacency list, if present.
    #[inline]
    pub fn find_neighbor(&self, u: NodeId, dst: NodeId) -> Option<usize> {
        self.neighbors(u).binary_search(&dst).ok()
    }

    /// The node type of `v` (0 for homogeneous graphs).
    #[inline]
    pub fn node_type(&self, v: NodeId) -> u16 {
        if self.node_types.is_empty() {
            0
        } else {
            self.node_types[v as usize]
        }
    }

    /// Number of distinct node types (>= 1).
    #[inline]
    pub fn num_node_types(&self) -> u16 {
        self.num_node_types
    }

    /// Number of distinct edge types (0 when edges are untyped).
    #[inline]
    pub fn num_edge_types(&self) -> u16 {
        self.num_edge_types
    }

    /// `true` if the graph carries node type information for more than one type.
    #[inline]
    pub fn is_heterogeneous(&self) -> bool {
        self.num_node_types > 1
    }

    /// `true` if every edge weight is exactly 1.0.
    #[inline]
    pub fn is_unweighted(&self) -> bool {
        self.unweighted
    }

    /// Human-readable names for node/edge types, if registered.
    #[inline]
    pub fn type_registry(&self) -> &TypeRegistry {
        &self.type_registry
    }

    /// Total degree (sum of weights) of node `v`.
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.weights(v).iter().map(|&w| w as f64).sum()
    }

    /// The raw offsets array (length |V| + 1). Exposed for samplers that build
    /// per-state bucket layouts aligned with the CSR edge array.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The global edge index of the `k`-th out-edge of `v`.
    #[inline]
    pub fn global_edge_index(&self, v: NodeId, k: usize) -> EdgeIdx {
        self.offsets[v as usize] + k
    }

    /// Memory footprint of the CSR arrays in bytes (ignores the registry).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<f32>()
            + self.node_types.len() * std::mem::size_of::<u16>()
            + self.edge_types.len() * std::mem::size_of::<u16>()
    }

    /// Nodes with at least one out-edge.
    pub fn non_isolated_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as NodeId).filter(move |&v| self.degree(v) > 0)
    }

    /// Checks structural invariants (sorted adjacency, offsets monotone,
    /// neighbor ids in range). Used by tests and by the binary loader.
    pub fn validate(&self) -> crate::Result<()> {
        let n = self.num_nodes();
        for w in self.offsets.windows(2) {
            if w[1] < w[0] {
                return Err(crate::GraphError::Corrupt("offsets not monotone".into()));
            }
        }
        for v in 0..n as NodeId {
            let nbrs = self.neighbors(v);
            for &u in nbrs {
                if (u as usize) >= n {
                    return Err(crate::GraphError::NodeOutOfRange {
                        node: u,
                        num_nodes: n,
                    });
                }
            }
            if !nbrs.windows(2).all(|w| w[0] <= w[1]) {
                return Err(crate::GraphError::Corrupt(format!(
                    "adjacency list of node {v} is not sorted"
                )));
            }
        }
        Ok(())
    }

    /// The raw node-type array (empty for homogeneous graphs). Exposed for the
    /// dynamic-graph overlay, which preserves types across compactions.
    #[inline]
    pub fn node_types(&self) -> &[u16] {
        &self.node_types
    }

    /// The raw edge-type array (empty when edges are untyped).
    #[inline]
    pub fn edge_types(&self) -> &[u16] {
        &self.edge_types
    }

    /// Overwrites the static weight of the `k`-th out-edge of `v` in place.
    ///
    /// This is the O(1) primitive behind streaming weight updates: reweighting
    /// never moves CSR entries, so no index is invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `k >= degree(v)`.
    #[inline]
    pub fn set_weight_at(&mut self, v: NodeId, k: usize, weight: f32) {
        assert!(k < self.degree(v), "edge index out of range");
        self.weights[self.offsets[v as usize] + k] = weight;
        if weight != 1.0 {
            self.unweighted = false;
        }
    }

    /// Overwrites the weight of edge `(u, dst)` in place, returning `false`
    /// when the edge does not exist.
    pub fn set_weight(&mut self, u: NodeId, dst: NodeId, weight: f32) -> bool {
        match self.find_neighbor(u, dst) {
            Some(k) => {
                self.set_weight_at(u, k, weight);
                true
            }
            None => false,
        }
    }

    // Accessors for the raw arrays, used by the binary snapshot writer.
    pub(crate) fn raw_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }
    pub(crate) fn raw_weights(&self) -> &[f32] {
        &self.weights
    }
    pub(crate) fn raw_node_types(&self) -> &[u16] {
        &self.node_types
    }
    pub(crate) fn raw_edge_types(&self) -> &[u16] {
        &self.edge_types
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle() -> crate::Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.symmetric(true).build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_sorted_and_has_edge() {
        let g = triangle();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.find_neighbor(1, 2), Some(1));
        assert_eq!(g.find_neighbor(1, 0), Some(0));
    }

    #[test]
    fn weights_follow_edges() {
        let g = triangle();
        // Edge (0,1) has weight 1.0 and (0,2) got 3.0 from the reversed (2,0).
        assert_eq!(g.weight_at(0, 0), 1.0);
        assert_eq!(g.weight_at(0, 1), 3.0);
        assert!(!g.is_unweighted());
        assert!((g.weighted_degree(0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn edge_refs_are_consistent() {
        let g = triangle();
        for v in 0..3u32 {
            for (k, e) in g.edges_of(v).enumerate() {
                assert_eq!(e.src, v);
                assert_eq!(e.local_idx as usize, k);
                assert_eq!(e.dst, g.neighbor_at(v, k));
                assert_eq!(e.weight, g.weight_at(v, k));
                assert_eq!(e.global_idx, g.global_edge_index(v, k));
            }
        }
    }

    #[test]
    fn all_edges_count_matches() {
        let g = triangle();
        assert_eq!(g.all_edges().count(), g.num_edges());
    }

    #[test]
    fn homogeneous_defaults() {
        let g = triangle();
        assert_eq!(g.node_type(0), 0);
        assert_eq!(g.num_node_types(), 1);
        assert_eq!(g.num_edge_types(), 0);
        assert!(!g.is_heterogeneous());
        assert_eq!(g.edge_type_at(0, 0), u16::MAX);
        assert!(g.edge_types_of(0).is_empty());
    }

    #[test]
    fn validate_ok() {
        let g = triangle();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn memory_bytes_positive() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn isolated_nodes_are_skipped() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2, 1.0);
        b.set_num_nodes(5);
        let g = b.symmetric(true).build();
        let non_isolated: Vec<_> = g.non_isolated_nodes().collect();
        assert_eq!(non_isolated, vec![0, 2]);
        assert_eq!(g.degree(4), 0);
    }
}
