//! # uninet-graph
//!
//! Graph substrate for the UniNet framework.
//!
//! This crate provides the in-memory network storage described in Section IV-C
//! of the UniNet paper (ICDE 2021): a compressed-sparse-row (CSR) adjacency
//! structure with optional edge weights, node types and edge types, so that
//! both homogeneous (DeepWalk, node2vec) and heterogeneous (metapath2vec,
//! edge2vec, fairwalk) random-walk models can run over the same storage.
//!
//! It also provides
//! * a [`GraphBuilder`] for constructing graphs from edge lists,
//! * text and binary I/O ([`io`]),
//! * synthetic graph generators ([`generators`]) used to substitute the
//!   paper's eleven real-world datasets (Table V), and
//! * summary statistics ([`stats`]).
//!
//! Within the workspace this crate is the storage plane everything else sits
//! on: `uninet-walker` walks over it, `uninet-dyngraph` wraps it in a delta
//! overlay for streaming updates, and `uninet-core` loads it from edge lists
//! (see `docs/ARCHITECTURE.md` at the repo root for the full picture).
//!
//! ## Example
//!
//! ```
//! use uninet_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 2.0);
//! b.add_edge(2, 0, 1.0);
//! let g = b.symmetric(true).build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 6); // both directions
//! assert_eq!(g.degree(0), 2);
//! ```

pub mod algo;
pub mod builder;
pub mod csr;
pub mod edge;
pub mod generators;
pub mod hetero;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use edge::{Edge, EdgeRef};
pub use hetero::{Metapath, TypeRegistry};
pub use stats::GraphStats;

/// Node identifier. Graphs up to ~4.2 billion nodes are supported.
pub type NodeId = u32;

/// Global edge index into the CSR edge array.
pub type EdgeIdx = usize;

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id beyond the declared number of nodes.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// A text line could not be parsed as an edge.
    Parse { line: usize, content: String },
    /// An I/O error occurred while reading or writing a graph file.
    Io(std::io::Error),
    /// A binary snapshot had an invalid header or was truncated.
    Corrupt(String),
    /// An operation required node/edge types but the graph has none.
    MissingTypes(&'static str),
    /// Any of the above, with the file it happened in attached — produced by
    /// the `*_file` loaders so diagnostics name the offending path.
    File {
        /// The graph file involved.
        path: std::path::PathBuf,
        /// The underlying error.
        source: Box<GraphError>,
    },
}

impl GraphError {
    /// Attaches a file path (no-op if one is already attached).
    pub fn with_path<P: AsRef<std::path::Path>>(self, p: P) -> Self {
        match self {
            GraphError::File { .. } => self,
            other => GraphError::File {
                path: p.as_ref().to_path_buf(),
                source: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range (num_nodes = {num_nodes})")
            }
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge at line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Corrupt(msg) => write!(f, "corrupt graph snapshot: {msg}"),
            GraphError::MissingTypes(what) => write!(f, "graph has no {what} information"),
            GraphError::File { path, source } => {
                write!(f, "graph file {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
