//! Support types for heterogeneous networks: type registries and metapaths.

/// Maps numeric node/edge type ids to human-readable names.
///
/// A registry is optional — generators and the edge-list reader create one
/// when type names are known, otherwise types stay purely numeric.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    node_type_names: Vec<String>,
    edge_type_names: Vec<String>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a node type name, returning its numeric id.
    pub fn node_type_id(&mut self, name: &str) -> u16 {
        if let Some(pos) = self.node_type_names.iter().position(|n| n == name) {
            return pos as u16;
        }
        self.node_type_names.push(name.to_string());
        (self.node_type_names.len() - 1) as u16
    }

    /// Registers (or looks up) an edge type name, returning its numeric id.
    pub fn edge_type_id(&mut self, name: &str) -> u16 {
        if let Some(pos) = self.edge_type_names.iter().position(|n| n == name) {
            return pos as u16;
        }
        self.edge_type_names.push(name.to_string());
        (self.edge_type_names.len() - 1) as u16
    }

    /// The name of node type `id`, if registered.
    pub fn node_type_name(&self, id: u16) -> Option<&str> {
        self.node_type_names.get(id as usize).map(String::as_str)
    }

    /// The name of edge type `id`, if registered.
    pub fn edge_type_name(&self, id: u16) -> Option<&str> {
        self.edge_type_names.get(id as usize).map(String::as_str)
    }

    /// Number of registered node type names.
    pub fn num_node_type_names(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of registered edge type names.
    pub fn num_edge_type_names(&self) -> usize {
        self.edge_type_names.len()
    }
}

/// A metapath: a cyclic sequence of node types that constrains a
/// metapath2vec walk (e.g. Author–Paper–Author, i.e. `[0, 1, 0]`).
///
/// Following the metapath2vec convention the first and last types are the
/// same; the walker advances through positions `0, 1, 2, …` and wraps around
/// skipping the duplicated terminal type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metapath {
    types: Vec<u16>,
}

impl Metapath {
    /// Creates a metapath from a sequence of node type ids.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two types are given.
    pub fn new(types: Vec<u16>) -> Self {
        assert!(types.len() >= 2, "a metapath needs at least two node types");
        Metapath { types }
    }

    /// The type sequence.
    pub fn types(&self) -> &[u16] {
        &self.types
    }

    /// Length of the metapath (number of positions, including both endpoints).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Always false: constructor enforces at least two entries.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node type expected at walk position `pos` (0-based, wrapping).
    ///
    /// If the metapath is cyclic (first == last), the duplicated terminal type
    /// is skipped when wrapping so the walk pattern repeats seamlessly, which
    /// is how metapath2vec treats e.g. the "APA" scheme.
    pub fn type_at(&self, pos: usize) -> u16 {
        let n = self.types.len();
        if self.types[0] == self.types[n - 1] {
            self.types[pos % (n - 1)]
        } else {
            self.types[pos % n]
        }
    }

    /// The node type expected *after* a node at position `pos`.
    pub fn next_type(&self, pos: usize) -> u16 {
        self.type_at(pos + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_stable_ids() {
        let mut r = TypeRegistry::new();
        let a = r.node_type_id("author");
        let p = r.node_type_id("paper");
        assert_eq!(a, 0);
        assert_eq!(p, 1);
        assert_eq!(r.node_type_id("author"), 0);
        assert_eq!(r.node_type_name(1), Some("paper"));
        assert_eq!(r.node_type_name(5), None);
        assert_eq!(r.num_node_type_names(), 2);
    }

    #[test]
    fn registry_edge_types_independent() {
        let mut r = TypeRegistry::new();
        r.node_type_id("a");
        let e = r.edge_type_id("cites");
        assert_eq!(e, 0);
        assert_eq!(r.edge_type_name(0), Some("cites"));
        assert_eq!(r.num_edge_type_names(), 1);
    }

    #[test]
    fn metapath_apa_cycles() {
        // Author(0) - Paper(1) - Author(0)
        let mp = Metapath::new(vec![0, 1, 0]);
        assert_eq!(mp.type_at(0), 0);
        assert_eq!(mp.type_at(1), 1);
        assert_eq!(mp.type_at(2), 0);
        assert_eq!(mp.type_at(3), 1);
        assert_eq!(mp.next_type(0), 1);
        assert_eq!(mp.next_type(1), 0);
        assert_eq!(mp.len(), 3);
        assert!(!mp.is_empty());
    }

    #[test]
    fn metapath_apvpa_cycles() {
        // Author(0) - Paper(1) - Venue(2) - Paper(1) - Author(0)
        let mp = Metapath::new(vec![0, 1, 2, 1, 0]);
        let expected = [0, 1, 2, 1, 0, 1, 2, 1, 0];
        for (pos, &t) in expected.iter().enumerate() {
            assert_eq!(mp.type_at(pos), t, "position {pos}");
        }
    }

    #[test]
    fn non_cyclic_metapath_wraps_fully() {
        let mp = Metapath::new(vec![0, 1, 2]);
        assert_eq!(mp.type_at(3), 0);
        assert_eq!(mp.type_at(4), 1);
    }

    #[test]
    #[should_panic]
    fn metapath_too_short_panics() {
        let _ = Metapath::new(vec![0]);
    }
}
