//! Property-based tests of the graph substrate: CSR invariants, builder
//! behaviour, and binary snapshot round-trips for arbitrary edge lists.

use proptest::prelude::*;

use uninet_graph::{io, GraphBuilder, GraphStats};

/// Strategy producing a random edge list over up to 40 nodes.
fn edge_list() -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    prop::collection::vec((0u32..40, 0u32..40, 0.1f32..5.0), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn built_graphs_always_validate(edges in edge_list(), symmetric in any::<bool>(), dedup in any::<bool>()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        b.symmetric(symmetric).dedup(dedup);
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        // Edge count bookkeeping.
        let expected_directed = if symmetric { 2 * edges.len() } else { edges.len() };
        if dedup {
            prop_assert!(g.num_edges() <= expected_directed);
        } else {
            prop_assert_eq!(g.num_edges(), expected_directed);
        }
        // Offsets/degree consistency.
        let total_degree: usize = (0..g.num_nodes() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total_degree, g.num_edges());
    }

    #[test]
    fn symmetric_graphs_have_symmetric_adjacency(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.symmetric(true).dedup(true).build();
        for v in 0..g.num_nodes() as u32 {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v), "edge {v}->{u} has no mirror");
            }
        }
    }

    #[test]
    fn binary_snapshot_roundtrips(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_typed_edge(u, v, w, (u + v) as u16 % 3);
        }
        let types: Vec<u16> = (0..40u16).map(|i| i % 4).collect();
        b.set_node_types(types);
        let g = b.symmetric(true).build();
        let bytes = io::to_bytes(&g);
        let g2 = io::from_bytes(&bytes).expect("roundtrip failed");
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() as u32 {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.weights(v), g.weights(v));
            prop_assert_eq!(g2.node_type(v), g.node_type(v));
        }
    }

    #[test]
    fn edge_list_text_roundtrips(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        let opts = io::EdgeListOptions { symmetric: false, dedup: false, default_weight: 1.0 };
        let g2 = io::read_edge_list(text.as_slice(), opts).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn stats_are_consistent(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.symmetric(true).build();
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.num_nodes, g.num_nodes());
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert!(s.max_degree <= g.num_nodes());
        prop_assert!(s.mean_degree <= s.max_degree as f64 + 1e-9);
        prop_assert!(s.weight_skew >= 1.0 - 1e-9);
    }
}
