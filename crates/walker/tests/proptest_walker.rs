//! Property-based tests of the walk layer: for arbitrary graphs, models and
//! samplers, the per-step transition frequencies of the M-H sampler agree with
//! the model's closed-form transition probabilities, and the 2D state index is
//! a bijection onto `0..num_states`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use uninet_graph::generators::erdos_renyi;
use uninet_graph::NodeId;
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::{DeepWalk, Node2Vec};
use uninet_walker::{RandomWalkModel, SamplerManager, WalkerState};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn state_index_is_a_bijection(nodes in 10usize..50, factor in 2usize..5, seed in 0u64..500) {
        let graph = erdos_renyi(nodes, nodes * factor, true, seed);
        let model = Node2Vec::new(0.5, 2.0);
        let manager = SamplerManager::new(&graph, &model, EdgeSamplerKind::Direct, 0);
        let mut seen = std::collections::HashSet::new();
        for v in 0..graph.num_nodes() as NodeId {
            for a in 0..model.bucket_size(&graph, v) as u32 {
                let idx = manager.state_index(WalkerState::new(v, a));
                prop_assert!(idx < manager.num_states());
                prop_assert!(seen.insert(idx), "state index {idx} not unique");
            }
        }
        prop_assert_eq!(seen.len(), manager.num_states());
    }

    #[test]
    fn mh_transition_frequencies_match_deepwalk_probabilities(
        nodes in 8usize..30,
        factor in 2usize..5,
        seed in 0u64..500,
    ) {
        let graph = erdos_renyi(nodes, nodes * factor, true, seed);
        let model = DeepWalk::new();
        let manager = SamplerManager::new(
            &graph,
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            0,
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5);
        // Pick the highest-degree node for a tight statistical test.
        let v = (0..graph.num_nodes() as NodeId).max_by_key(|&v| graph.degree(v)).unwrap();
        prop_assume!(graph.degree(v) >= 2);
        let state = model.initial_state(&graph, v);
        let draws = 40_000;
        let mut counts = vec![0usize; graph.degree(v)];
        for _ in 0..draws {
            let k = manager.sample(&graph, &model, state, &mut rng).unwrap();
            counts[k] += 1;
        }
        let total_w: f64 = graph.weights(v).iter().map(|&w| w as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let expected = graph.weight_at(v, k) as f64 / total_w;
            let freq = c as f64 / draws as f64;
            prop_assert!(
                (freq - expected).abs() < 0.05 + 0.1 * expected,
                "neighbor {k}: frequency {freq} vs expected {expected}"
            );
        }
    }

    #[test]
    fn node2vec_weights_respect_alpha_bounds(
        nodes in 10usize..40,
        factor in 2usize..5,
        p in 0.1f32..4.0,
        q in 0.1f32..4.0,
        seed in 0u64..500,
    ) {
        let graph = erdos_renyi(nodes, nodes * factor, true, seed);
        let model = Node2Vec::new(p, q);
        let max_alpha = (1.0f32).max(1.0 / p).max(1.0 / q);
        let min_alpha = (1.0f32).min(1.0 / p).min(1.0 / q);
        for v in 0..graph.num_nodes() as NodeId {
            if graph.degree(v) == 0 {
                continue;
            }
            let state = WalkerState::new(v, 0);
            for e in graph.edges_of(v) {
                let w = model.calculate_weight(&graph, state, e);
                prop_assert!(w <= max_alpha * e.weight + 1e-5);
                prop_assert!(w >= min_alpha * e.weight - 1e-5);
            }
        }
    }
}
