//! The output of random-walk generation: a corpus of node sequences.

use uninet_graph::NodeId;

/// A collection of random walks, the "training corpus" fed to word2vec.
#[derive(Debug, Clone, Default)]
pub struct WalkCorpus {
    walks: Vec<Vec<NodeId>>,
}

impl WalkCorpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a corpus from pre-generated walks.
    pub fn from_walks(walks: Vec<Vec<NodeId>>) -> Self {
        WalkCorpus { walks }
    }

    /// Appends one walk.
    pub fn push(&mut self, walk: Vec<NodeId>) {
        self.walks.push(walk);
    }

    /// Merges another corpus into this one.
    pub fn extend(&mut self, other: WalkCorpus) {
        self.walks.extend(other.walks);
    }

    /// Number of walks.
    pub fn num_walks(&self) -> usize {
        self.walks.len()
    }

    /// True when the corpus holds no walks.
    pub fn is_empty(&self) -> bool {
        self.walks.is_empty()
    }

    /// Total number of node occurrences over all walks.
    pub fn total_tokens(&self) -> usize {
        self.walks.iter().map(Vec::len).sum()
    }

    /// Average walk length.
    pub fn mean_length(&self) -> f64 {
        if self.walks.is_empty() {
            0.0
        } else {
            self.total_tokens() as f64 / self.walks.len() as f64
        }
    }

    /// Iterator over the walks.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.walks.iter().map(Vec::as_slice)
    }

    /// The underlying walks.
    pub fn walks(&self) -> &[Vec<NodeId>] {
        &self.walks
    }

    /// One walk by index.
    pub fn walk(&self, i: usize) -> &[NodeId] {
        &self.walks[i]
    }

    /// Replaces the walk at `i` (used by incremental walk refresh).
    pub fn set_walk(&mut self, i: usize, walk: Vec<NodeId>) {
        self.walks[i] = walk;
    }

    /// Consumes the corpus and returns the walks.
    pub fn into_walks(self) -> Vec<Vec<NodeId>> {
        self.walks
    }

    /// Per-node visit counts over the corpus (length = `num_nodes`).
    ///
    /// Useful both for verifying the stationary behaviour of samplers and for
    /// building word2vec vocabularies with correct frequencies.
    pub fn visit_counts(&self, num_nodes: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_nodes];
        for walk in &self.walks {
            for &v in walk {
                counts[v as usize] += 1;
            }
        }
        counts
    }
}

impl<'a> IntoIterator for &'a WalkCorpus {
    type Item = &'a Vec<NodeId>;
    type IntoIter = std::slice::Iter<'a, Vec<NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.walks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut c = WalkCorpus::new();
        assert!(c.is_empty());
        c.push(vec![0, 1, 2]);
        c.push(vec![2, 1]);
        assert_eq!(c.num_walks(), 2);
        assert_eq!(c.total_tokens(), 5);
        assert!((c.mean_length() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn visit_counts_accumulate() {
        let c = WalkCorpus::from_walks(vec![vec![0, 1, 1], vec![2, 1]]);
        let counts = c.visit_counts(4);
        assert_eq!(counts, vec![1, 3, 1, 0]);
    }

    #[test]
    fn extend_merges() {
        let mut a = WalkCorpus::from_walks(vec![vec![0]]);
        let b = WalkCorpus::from_walks(vec![vec![1], vec![2]]);
        a.extend(b);
        assert_eq!(a.num_walks(), 3);
    }

    #[test]
    fn iteration_yields_slices() {
        let c = WalkCorpus::from_walks(vec![vec![0, 1], vec![2]]);
        let lens: Vec<usize> = c.iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![2, 1]);
        let borrowed: Vec<usize> = (&c).into_iter().map(|w| w.len()).collect();
        assert_eq!(borrowed, lens);
        assert_eq!(c.walks().len(), 2);
        assert_eq!(c.into_walks().len(), 2);
    }

    #[test]
    fn empty_mean_length_is_zero() {
        assert_eq!(WalkCorpus::new().mean_length(), 0.0);
    }
}
