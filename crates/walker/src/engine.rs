//! The parallel random-walk generation engine (Algorithm 2 of the paper).
//!
//! Walkers are independent, so the engine shards start nodes across threads
//! and each thread runs the walk loop with its own RNG; the per-state M-H
//! chains are shared through the lock-free [`SamplerManager`].

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use uninet_graph::{Graph, NodeId};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};

use crate::manager::SamplerManager;
use crate::model::RandomWalkModel;
use crate::walk::WalkCorpus;

/// Configuration of a walk-generation run.
#[derive(Debug, Clone, Copy)]
pub struct WalkEngineConfig {
    /// Number of walks started per node (`K`, paper default 10).
    pub num_walks: usize,
    /// Length of each walk in nodes (`L`, paper default 80).
    pub walk_length: usize,
    /// Number of worker threads (paper default 16).
    pub num_threads: usize,
    /// Seed for the per-thread RNGs.
    pub seed: u64,
    /// Which edge sampler to use.
    pub sampler: EdgeSamplerKind,
    /// Memory budget for the memory-aware sampler (0 = same as M-H footprint).
    pub memory_budget_bytes: usize,
}

impl Default for WalkEngineConfig {
    fn default() -> Self {
        WalkEngineConfig {
            num_walks: 10,
            walk_length: 80,
            num_threads: 16,
            seed: 42,
            sampler: EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            memory_budget_bytes: 0,
        }
    }
}

impl WalkEngineConfig {
    /// Builder-style setter for the number of walks per node.
    pub fn with_num_walks(mut self, k: usize) -> Self {
        self.num_walks = k;
        self
    }
    /// Builder-style setter for the walk length.
    pub fn with_walk_length(mut self, l: usize) -> Self {
        self.walk_length = l;
        self
    }
    /// Builder-style setter for the thread count.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.num_threads = t.max(1);
        self
    }
    /// Builder-style setter for the sampler strategy.
    pub fn with_sampler(mut self, s: EdgeSamplerKind) -> Self {
        self.sampler = s;
        self
    }
    /// Builder-style setter for the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Wall-clock breakdown of one walk-generation run, matching the `Ti` / `Tw`
/// columns of Table VI.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkTiming {
    /// Sampler-manager construction time (initialization cost `Ti`).
    pub init: Duration,
    /// Walking time (`Tw`).
    pub walk: Duration,
}

impl WalkTiming {
    /// Total of initialization and walking time.
    pub fn total(&self) -> Duration {
        self.init + self.walk
    }
}

/// The walk-generation engine.
#[derive(Debug, Clone, Copy)]
pub struct WalkEngine {
    config: WalkEngineConfig,
}

impl WalkEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: WalkEngineConfig) -> Self {
        WalkEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WalkEngineConfig {
        &self.config
    }

    /// Generates the full corpus: `num_walks` walks of `walk_length` nodes
    /// from every non-isolated node, and reports the timing breakdown.
    pub fn generate<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &Graph,
        model: &M,
    ) -> (WalkCorpus, WalkTiming) {
        let start_nodes: Vec<NodeId> = graph.non_isolated_nodes().collect();
        self.generate_from(graph, model, &start_nodes)
    }

    /// Generates walks starting only from `start_nodes`.
    pub fn generate_from<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &Graph,
        model: &M,
        start_nodes: &[NodeId],
    ) -> (WalkCorpus, WalkTiming) {
        let cfg = &self.config;
        let t0 = Instant::now();
        let manager = SamplerManager::new(graph, model, cfg.sampler, cfg.memory_budget_bytes);
        let init = t0.elapsed();
        let (corpus, timing) = self.generate_with_manager(graph, model, &manager, start_nodes);
        (
            corpus,
            WalkTiming {
                init,
                walk: timing.walk,
            },
        )
    }

    /// Generates walks using a caller-owned [`SamplerManager`].
    ///
    /// This is the entry point of the streaming/dynamic pipeline: the manager
    /// (and with it the per-state M-H chain states) survives across calls, so
    /// walk refresh after a graph update does not pay the initialization cost
    /// again. The reported `init` time is zero.
    pub fn generate_with_manager<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        start_nodes: &[NodeId],
    ) -> (WalkCorpus, WalkTiming) {
        let cfg = &self.config;
        let init = Duration::ZERO;
        let t1 = Instant::now();
        let num_threads = cfg.num_threads.max(1).min(start_nodes.len().max(1));
        let chunk_size = start_nodes.len().div_ceil(num_threads.max(1)).max(1);

        let mut corpus = WalkCorpus::new();
        if start_nodes.is_empty() {
            return (
                corpus,
                WalkTiming {
                    init,
                    walk: t1.elapsed(),
                },
            );
        }

        let chunks: Vec<&[NodeId]> = start_nodes.chunks(chunk_size).collect();
        let manager_ref = manager;
        let results: Vec<WalkCorpus> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(tid, chunk)| {
                    scope.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(
                            cfg.seed ^ (tid as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        let mut local = WalkCorpus::new();
                        for &start in chunk.iter() {
                            for _ in 0..cfg.num_walks {
                                local.push(walk_once(
                                    graph,
                                    model,
                                    manager_ref,
                                    start,
                                    cfg.walk_length,
                                    &mut rng,
                                ));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("walker thread panicked"))
                .collect()
        })
        .expect("walker scope panicked");

        for part in results {
            corpus.extend(part);
        }
        let walk = t1.elapsed();
        (corpus, WalkTiming { init, walk })
    }
}

/// Runs one walk of at most `length` nodes from `start` (Algorithm 2, lines 5–14).
///
/// Public so that the dynamic-graph walk refresher can regenerate individual
/// walks against a live [`SamplerManager`] without re-running a full corpus.
pub fn walk_once<M: RandomWalkModel + ?Sized, R: rand::Rng>(
    graph: &Graph,
    model: &M,
    manager: &SamplerManager,
    start: NodeId,
    length: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    walk.push(start);
    let mut state = model.initial_state(graph, start);
    for _ in 1..length {
        let Some(k) = manager.sample(graph, model, state, rng) else {
            break;
        };
        let edge = graph.edge_ref(state.position, k);
        state = model.update_state(graph, state, edge);
        walk.push(edge.dst);
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{DeepWalk, Edge2Vec, FairWalk, MetaPath2Vec, Node2Vec};
    use uninet_graph::generators::{heterogenize, rmat, RmatConfig};
    use uninet_graph::{GraphBuilder, Metapath};

    fn test_graph() -> Graph {
        rmat(&RmatConfig {
            num_nodes: 200,
            num_edges: 1500,
            weighted: true,
            seed: 3,
            ..Default::default()
        })
    }

    fn check_walks_are_paths(graph: &Graph, corpus: &WalkCorpus) {
        for walk in corpus.iter() {
            assert!(!walk.is_empty());
            for pair in walk.windows(2) {
                assert!(
                    graph.has_edge(pair[0], pair[1]),
                    "walk contains non-edge {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn deepwalk_generates_expected_number_of_walks() {
        let g = test_graph();
        let cfg = WalkEngineConfig::default()
            .with_num_walks(3)
            .with_walk_length(12)
            .with_threads(4);
        let engine = WalkEngine::new(cfg);
        let (corpus, timing) = engine.generate(&g, &DeepWalk::new());
        let starts = g.non_isolated_nodes().count();
        assert_eq!(corpus.num_walks(), 3 * starts);
        assert!(corpus.mean_length() > 10.0);
        assert!(timing.total() >= timing.walk);
        check_walks_are_paths(&g, &corpus);
    }

    #[test]
    fn all_models_walk_with_mh_sampler() {
        let g = heterogenize(&test_graph(), 3, 2, 9);
        let cfg = WalkEngineConfig::default()
            .with_num_walks(1)
            .with_walk_length(10)
            .with_threads(4);
        let engine = WalkEngine::new(cfg);

        let deepwalk = DeepWalk::new();
        let node2vec = Node2Vec::new(0.25, 4.0);
        let metapath = MetaPath2Vec::new(Metapath::new(vec![0, 1, 2, 1, 0]));
        let edge2vec = Edge2Vec::uniform(0.25, 0.25, 2);
        let fairwalk = FairWalk::new(&g, 1.0, 1.0);
        let models: Vec<&dyn RandomWalkModel> =
            vec![&deepwalk, &node2vec, &metapath, &edge2vec, &fairwalk];
        for model in models {
            let (corpus, _) = engine.generate(&g, model);
            assert!(corpus.num_walks() > 0, "{} produced no walks", model.name());
            check_walks_are_paths(&g, &corpus);
        }
    }

    #[test]
    fn walks_are_valid_for_every_sampler_kind() {
        let g = test_graph();
        let model = Node2Vec::new(0.5, 2.0);
        for kind in [
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 10 }),
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Direct,
            EdgeSamplerKind::Rejection,
            EdgeSamplerKind::KnightKing,
            EdgeSamplerKind::MemoryAware,
        ] {
            let cfg = WalkEngineConfig::default()
                .with_num_walks(1)
                .with_walk_length(8)
                .with_threads(2)
                .with_sampler(kind);
            let (corpus, timing) = WalkEngine::new(cfg).generate(&g, &model);
            check_walks_are_paths(&g, &corpus);
            assert!(timing.init >= Duration::ZERO);
        }
    }

    #[test]
    fn metapath_walks_alternate_types() {
        let g = heterogenize(&test_graph(), 2, 1, 5);
        let model = MetaPath2Vec::new(Metapath::new(vec![0, 1, 0]));
        let cfg = WalkEngineConfig::default()
            .with_num_walks(2)
            .with_walk_length(10)
            .with_threads(2);
        let (corpus, _) = WalkEngine::new(cfg).generate(&g, &model);
        let mut checked = 0;
        for walk in corpus.iter() {
            // Only start nodes of type 0 follow the A-B-A-B pattern from position 0.
            if g.node_type(walk[0]) != 0 {
                continue;
            }
            for (i, &v) in walk.iter().enumerate() {
                assert_eq!(
                    g.node_type(v) as usize,
                    i % 2,
                    "walk {walk:?} breaks the metapath"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn walk_from_subset_of_nodes() {
        let g = test_graph();
        let engine = WalkEngine::new(
            WalkEngineConfig::default()
                .with_num_walks(2)
                .with_walk_length(5)
                .with_threads(2),
        );
        let starts = vec![0u32, 1, 2, 3];
        let (corpus, _) = engine.generate_from(&g, &DeepWalk::new(), &starts);
        assert_eq!(corpus.num_walks(), 8);
        for walk in corpus.iter() {
            assert!(starts.contains(&walk[0]));
        }
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let g = test_graph();
        let cfg = WalkEngineConfig::default()
            .with_num_walks(2)
            .with_walk_length(10)
            .with_threads(1)
            .with_seed(123);
        let (a, _) = WalkEngine::new(cfg).generate(&g, &DeepWalk::new());
        let (b, _) = WalkEngine::new(cfg).generate(&g, &DeepWalk::new());
        assert_eq!(a.walks(), b.walks());
    }

    #[test]
    fn isolated_start_gives_single_node_walk() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.set_num_nodes(3);
        let g = b.symmetric(true).build();
        let engine = WalkEngine::new(
            WalkEngineConfig::default()
                .with_num_walks(1)
                .with_walk_length(5),
        );
        let (corpus, _) = engine.generate_from(&g, &DeepWalk::new(), &[2]);
        assert_eq!(corpus.num_walks(), 1);
        assert_eq!(corpus.walks()[0], vec![2]);
    }
}
