//! Walker state and its 2D (position, affixture) decomposition.

use uninet_graph::NodeId;

/// The state of a walker, decomposed as in Figure 4 of the paper:
///
/// * `position` — the node the walker currently resides on, and
/// * `affixture` — the extra information that disambiguates the transition
///   probability distribution: for DeepWalk it is unused (0); for
///   node2vec/edge2vec/fairwalk it is the local index of the previously
///   visited node inside the current node's adjacency list; for metapath2vec
///   it is the current position in the metapath.
///
/// Together the two components index an edge sampler in O(1): samplers of all
/// states sharing a `position` live in one bucket, and `affixture` is the
/// offset inside that bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkerState {
    /// The current residing node of the walker.
    pub position: NodeId,
    /// Model-specific extra state (see type-level docs).
    pub affixture: u32,
}

impl WalkerState {
    /// Creates a state with an empty affixture (first-order models).
    pub fn at(position: NodeId) -> Self {
        WalkerState {
            position,
            affixture: 0,
        }
    }

    /// Creates a state with an explicit affixture.
    pub fn new(position: NodeId, affixture: u32) -> Self {
        WalkerState {
            position,
            affixture,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = WalkerState::at(7);
        assert_eq!(a.position, 7);
        assert_eq!(a.affixture, 0);
        let b = WalkerState::new(3, 9);
        assert_eq!(b.position, 3);
        assert_eq!(b.affixture, 9);
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(WalkerState::new(1, 2));
        set.insert(WalkerState::new(1, 2));
        set.insert(WalkerState::new(2, 1));
        assert_eq!(set.len(), 2);
    }
}
