//! The sampler manager: one edge sampler per walker state, organized in the
//! 2D (position, affixture) layout of Figure 4 so that the sampler responsible
//! for any state is found in O(1).
//!
//! The manager supports every sampler family compared in the paper, selected
//! by [`EdgeSamplerKind`]; building the manager is the *initialization phase*
//! whose cost (`Ti`) Table VI and Figure 6 report separately from the walking
//! phase.

use rand::Rng;

use uninet_graph::{Graph, NodeId};
use uninet_sampler::alias::AliasTable;
use uninet_sampler::direct::direct_sample_fn;
use uninet_sampler::memory_aware::{alias_table_bytes, MemoryAwarePlan, StateSamplerKind};
use uninet_sampler::metropolis_hastings::AtomicMhChain;
use uninet_sampler::{EdgeSamplerKind, InitStrategy};

use crate::model::RandomWalkModel;
use crate::state::WalkerState;

/// Per-state edge samplers for one (graph, model) pair.
pub struct SamplerManager {
    kind: EdgeSamplerKind,
    /// `bucket_offsets[v]..bucket_offsets[v+1]` indexes the states whose
    /// position is `v` (the bucket of Figure 4).
    bucket_offsets: Vec<usize>,
    backend: Backend,
}

enum Backend {
    /// UniNet's M-H sampler: one 4-byte chain per state.
    MetropolisHastings {
        chains: Vec<AtomicMhChain>,
        init: InitStrategy,
    },
    /// Fully materialized alias tables of the *dynamic* weights, per state.
    Alias { tables: Vec<Option<AliasTable>> },
    /// Direct sampling: stateless.
    Direct,
    /// Rejection sampling from per-node static-weight proposals.
    Rejection {
        proposals: Vec<Option<AliasTable>>,
        folding: bool,
    },
    /// Memory-aware hybrid: alias tables for the states chosen by the plan.
    MemoryAware {
        plan: MemoryAwarePlan,
        tables: Vec<Option<AliasTable>>,
    },
}

/// Safety cap on rejection attempts before falling back to direct sampling.
const MAX_REJECTION_ATTEMPTS: usize = 1024;

/// Cost accounting of one incremental maintenance pass, the quantity the
/// dynamic-update experiments compare across sampler families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Walker states whose node was touched by the update.
    pub states_examined: usize,
    /// States whose materialized sampler (alias table / proposal) was rebuilt.
    pub states_rebuilt: usize,
    /// M-H chains that survived the update with their state intact
    /// (the paper's O(1)-per-update claim in action).
    pub chains_preserved: usize,
    /// M-H chains that had to be reset (topology change on their node).
    pub chains_reset: usize,
    /// Bytes of sampler state re-materialized by the pass.
    pub bytes_rebuilt: usize,
}

impl MaintenanceStats {
    /// Accumulates another pass into this one.
    pub fn merge(&mut self, other: &MaintenanceStats) {
        self.states_examined += other.states_examined;
        self.states_rebuilt += other.states_rebuilt;
        self.chains_preserved += other.chains_preserved;
        self.chains_reset += other.chains_reset;
        self.bytes_rebuilt += other.bytes_rebuilt;
    }
}

impl SamplerManager {
    /// Builds the manager (the initialization phase).
    ///
    /// `memory_budget_bytes` is only used by the memory-aware strategy; pass 0
    /// to default to the same footprint UniNet's M-H sampler would use
    /// (4 bytes per state), mirroring the paper's experimental setup.
    pub fn new<M: RandomWalkModel + ?Sized>(
        graph: &Graph,
        model: &M,
        kind: EdgeSamplerKind,
        memory_budget_bytes: usize,
    ) -> Self {
        let n = graph.num_nodes();
        let mut bucket_offsets = Vec::with_capacity(n + 1);
        bucket_offsets.push(0usize);
        for v in 0..n as NodeId {
            let prev = *bucket_offsets.last().expect("non-empty");
            bucket_offsets.push(prev + model.bucket_size(graph, v));
        }
        let num_states = *bucket_offsets.last().expect("non-empty");

        let backend = match kind {
            EdgeSamplerKind::MetropolisHastings(init) => Backend::MetropolisHastings {
                chains: (0..num_states).map(|_| AtomicMhChain::new()).collect(),
                init,
            },
            EdgeSamplerKind::Direct => Backend::Direct,
            EdgeSamplerKind::Alias => Backend::Alias {
                tables: build_state_tables(graph, model, &bucket_offsets, None),
            },
            EdgeSamplerKind::Rejection | EdgeSamplerKind::KnightKing => {
                let proposals = (0..n as NodeId)
                    .map(|v| build_proposal(graph.weights(v)))
                    .collect();
                Backend::Rejection {
                    proposals,
                    folding: kind == EdgeSamplerKind::KnightKing,
                }
            }
            EdgeSamplerKind::MemoryAware => {
                let budget = if memory_budget_bytes == 0 {
                    num_states * 4
                } else {
                    memory_budget_bytes
                };
                // Benefit estimate: every state over node v costs O(deg v) per
                // direct draw and is visited roughly proportionally to deg(v).
                let mut specs = Vec::with_capacity(num_states);
                for v in 0..n as NodeId {
                    let deg = graph.degree(v);
                    for _ in 0..model.bucket_size(graph, v) {
                        specs.push((deg, deg as f64));
                    }
                }
                let plan = MemoryAwarePlan::plan(&specs, budget);
                let tables = build_state_tables(graph, model, &bucket_offsets, Some(&plan));
                Backend::MemoryAware { plan, tables }
            }
        };

        SamplerManager {
            kind,
            bucket_offsets,
            backend,
        }
    }

    /// The strategy this manager was built for.
    pub fn kind(&self) -> EdgeSamplerKind {
        self.kind
    }

    /// Total number of walker states managed.
    pub fn num_states(&self) -> usize {
        *self.bucket_offsets.last().expect("non-empty")
    }

    /// The flat index of a walker state (bucket lookup of Figure 4).
    #[inline]
    pub fn state_index(&self, state: WalkerState) -> usize {
        let base = self.bucket_offsets[state.position as usize];
        let width = self.bucket_offsets[state.position as usize + 1] - base;
        // Defensive clamp: an affixture beyond the bucket (possible only for
        // malformed states) maps to the first slot instead of corrupting
        // a neighboring bucket.
        if width == 0 {
            base
        } else {
            base + (state.affixture as usize).min(width - 1)
        }
    }

    /// Approximate memory footprint of the sampler state in bytes.
    pub fn memory_bytes(&self) -> usize {
        let offsets = self.bucket_offsets.len() * std::mem::size_of::<usize>();
        offsets
            + match &self.backend {
                Backend::MetropolisHastings { chains, .. } => chains.len() * 4,
                Backend::Alias { tables } | Backend::MemoryAware { tables, .. } => tables
                    .iter()
                    .map(|t| t.as_ref().map(|t| t.memory_bytes()).unwrap_or(0))
                    .sum::<usize>(),
                Backend::Direct => 0,
                Backend::Rejection { proposals, .. } => proposals
                    .iter()
                    .map(|t| t.as_ref().map(|t| t.memory_bytes()).unwrap_or(0))
                    .sum::<usize>(),
            }
    }

    /// Draws the local index of the next edge for `state`, or `None` when the
    /// walker is stuck (no out-edges, or all dynamic weights are zero).
    pub fn sample<M: RandomWalkModel + ?Sized, R: Rng>(
        &self,
        graph: &Graph,
        model: &M,
        state: WalkerState,
        rng: &mut R,
    ) -> Option<usize> {
        let v = state.position;
        let deg = graph.degree(v);
        if deg == 0 {
            return None;
        }
        let weight = |k: usize| model.calculate_weight(graph, state, graph.edge_ref(v, k));

        match &self.backend {
            Backend::MetropolisHastings { chains, init } => {
                let idx = self.state_index(state);
                let chosen = chains[idx].step(deg, &weight, *init, rng);
                if weight(chosen) > 0.0 {
                    Some(chosen)
                } else {
                    // The chain has not reached the support of the target
                    // distribution yet (possible right after random init);
                    // fall back to an exact draw to keep the walk valid.
                    direct_sample_fn(deg, weight, rng)
                }
            }
            Backend::Direct => direct_sample_fn(deg, weight, rng),
            Backend::Alias { tables } => {
                let idx = self.state_index(state);
                tables[idx].as_ref().map(|t| t.sample(rng))
            }
            Backend::MemoryAware { plan, tables } => {
                let idx = self.state_index(state);
                match plan.kind(idx) {
                    StateSamplerKind::Alias => match tables[idx].as_ref() {
                        Some(t) => Some(t.sample(rng)),
                        None => direct_sample_fn(deg, weight, rng),
                    },
                    StateSamplerKind::Direct => direct_sample_fn(deg, weight, rng),
                }
            }
            Backend::Rejection { proposals, folding } => {
                let proposal = proposals[v as usize].as_ref()?;
                if *folding {
                    self.sample_with_folding(graph, model, state, proposal, &weight, rng)
                } else {
                    let bound = model.rejection_bound(graph, state);
                    for _ in 0..MAX_REJECTION_ATTEMPTS {
                        let candidate = proposal.sample(rng);
                        let ratio = weight(candidate) / (bound * graph.weight_at(v, candidate));
                        if rng.gen::<f32>() < ratio {
                            return Some(candidate);
                        }
                    }
                    direct_sample_fn(deg, weight, rng)
                }
            }
        }
    }

    /// The state-index range of node `v`'s bucket.
    #[inline]
    fn bucket_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.bucket_offsets[v as usize]..self.bucket_offsets[v as usize + 1]
    }

    /// The last accepted sample of the M-H chain at `state_index`, or `None`
    /// when the backend is not M-H or the chain is uninitialized.
    ///
    /// Introspection hook used by incremental-maintenance tests to verify
    /// that chain state survives weight updates.
    pub fn mh_chain_last(&self, state_index: usize) -> Option<u32> {
        match &self.backend {
            Backend::MetropolisHastings { chains, .. } => chains[state_index].last(),
            _ => None,
        }
    }

    /// Whether the alias-family backend holds a materialized table for
    /// `state_index` (always `false` for stateless/M-H backends).
    pub fn has_alias_table(&self, state_index: usize) -> bool {
        match &self.backend {
            Backend::Alias { tables } | Backend::MemoryAware { tables, .. } => {
                tables[state_index].is_some()
            }
            _ => false,
        }
    }

    /// Incrementally absorbs weight-only updates on the nodes in `touched`.
    ///
    /// The graph's topology (degrees, neighbor sets, bucket layout) must be
    /// unchanged; only edge weights may differ from construction time. The
    /// per-family cost is the experiment the paper's dynamic-workload argument
    /// rests on:
    ///
    /// * **Metropolis–Hastings** — nothing to do: the chains sample from
    ///   unnormalized weights read on demand, so a reweight costs O(1) (and
    ///   the existing chain state remains a valid sample of the old target,
    ///   converging to the new one in subsequent steps).
    /// * **Alias / memory-aware** — every materialized table over a touched
    ///   node encodes the old normalized distribution and must be rebuilt at
    ///   O(deg) per state.
    /// * **Rejection / KnightKing** — the per-node static proposal table must
    ///   be rebuilt at O(deg).
    /// * **Direct** — stateless, nothing to do.
    pub fn maintain_weights<M: RandomWalkModel + ?Sized>(
        &mut self,
        graph: &Graph,
        model: &M,
        touched: &[NodeId],
    ) -> MaintenanceStats {
        let mut stats = MaintenanceStats::default();
        for &v in touched {
            let range = self.bucket_range(v);
            let width = range.len();
            stats.states_examined += width;
            let deg = graph.degree(v);
            match &mut self.backend {
                Backend::MetropolisHastings { .. } => {
                    stats.chains_preserved += width;
                }
                Backend::Direct => {}
                Backend::Alias { tables } => {
                    for idx in range {
                        let affixture = idx - self.bucket_offsets[v as usize];
                        let table = build_one_table(graph, model, v, affixture, deg);
                        stats.states_rebuilt += 1;
                        stats.bytes_rebuilt +=
                            table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                        tables[idx] = table;
                    }
                }
                Backend::MemoryAware { plan, tables } => {
                    for idx in range {
                        if plan.kind(idx) != StateSamplerKind::Alias {
                            continue;
                        }
                        let affixture = idx - self.bucket_offsets[v as usize];
                        let table = build_one_table(graph, model, v, affixture, deg);
                        stats.states_rebuilt += 1;
                        stats.bytes_rebuilt +=
                            table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                        tables[idx] = table;
                    }
                }
                Backend::Rejection { proposals, .. } => {
                    let table = build_proposal(graph.weights(v));
                    stats.states_rebuilt += 1;
                    stats.bytes_rebuilt += table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                    proposals[v as usize] = table;
                }
            }
        }
        stats
    }

    /// [`SamplerManager::maintain_weights`] with the O(deg) table rebuilds
    /// fanned out across `num_threads` worker threads.
    ///
    /// Touched nodes are chunked across threads; each thread *builds* the
    /// replacement alias/proposal tables against the (immutable) graph, and
    /// the finished tables are installed serially — table construction is the
    /// entire rebuild cost, installation is a pointer swap per state. The
    /// M-H and direct backends have no materialized state, so they take the
    /// serial path unconditionally (it only bumps counters).
    ///
    /// Produces exactly the same backend state and [`MaintenanceStats`] as
    /// the serial path.
    pub fn maintain_weights_parallel<M: RandomWalkModel + ?Sized>(
        &mut self,
        graph: &Graph,
        model: &M,
        touched: &[NodeId],
        num_threads: usize,
    ) -> MaintenanceStats {
        let rebuilds_tables = matches!(
            self.backend,
            Backend::Alias { .. } | Backend::MemoryAware { .. } | Backend::Rejection { .. }
        );
        if !rebuilds_tables || num_threads <= 1 || touched.len() < 2 {
            return self.maintain_weights(graph, model, touched);
        }

        let mut stats = MaintenanceStats::default();
        let chunk_size = touched.len().div_ceil(num_threads).max(1);
        let offsets = &self.bucket_offsets;

        // Build replacement tables in parallel (reads only), install serially.
        enum Built {
            State(usize, Option<AliasTable>),
            Proposal(NodeId, Option<AliasTable>),
        }
        let is_rejection = matches!(self.backend, Backend::Rejection { .. });
        let plan: Option<&MemoryAwarePlan> = match &self.backend {
            Backend::MemoryAware { plan, .. } => Some(plan),
            _ => None,
        };

        let built: Vec<Vec<Built>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = touched
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for &v in chunk {
                            let deg = graph.degree(v);
                            if is_rejection {
                                out.push(Built::Proposal(v, build_proposal(graph.weights(v))));
                                continue;
                            }
                            let base = offsets[v as usize];
                            for idx in base..offsets[v as usize + 1] {
                                if plan.is_some_and(|p| p.kind(idx) != StateSamplerKind::Alias) {
                                    continue;
                                }
                                out.push(Built::State(
                                    idx,
                                    build_one_table(graph, model, v, idx - base, deg),
                                ));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("maintenance worker panicked"))
                .collect()
        })
        .expect("maintenance scope panicked");

        for &v in touched {
            stats.states_examined +=
                self.bucket_offsets[v as usize + 1] - self.bucket_offsets[v as usize];
        }
        match &mut self.backend {
            Backend::Alias { tables } | Backend::MemoryAware { tables, .. } => {
                for b in built.into_iter().flatten() {
                    if let Built::State(idx, table) = b {
                        stats.states_rebuilt += 1;
                        stats.bytes_rebuilt +=
                            table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                        tables[idx] = table;
                    }
                }
            }
            Backend::Rejection { proposals, .. } => {
                for b in built.into_iter().flatten() {
                    if let Built::Proposal(v, table) = b {
                        stats.states_rebuilt += 1;
                        stats.bytes_rebuilt +=
                            table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                        proposals[v as usize] = table;
                    }
                }
            }
            Backend::MetropolisHastings { .. } | Backend::Direct => unreachable!("handled above"),
        }
        stats
    }

    /// Re-aligns the manager with `graph` after a topology change (edge
    /// inserts/deletes already compacted into the CSR).
    ///
    /// `touched` are the nodes whose own adjacency changed — their buckets
    /// may have resized, so every backend resets/rebuilds them. `stale` are
    /// nodes whose adjacency is unchanged but whose *materialized* dynamic
    /// distributions read a mutated node's adjacency (second-order models) —
    /// alias-family tables there are rebuilt, while M-H chains are carried
    /// over untouched (chains never materialize weights; a shifted target
    /// distribution is simply tracked by subsequent transitions).
    ///
    /// Every other node's sampler state is carried over when its bucket width
    /// is unchanged: M-H chains keep their last-accepted sample (4 bytes
    /// moved per state), alias tables and rejection proposals are reused
    /// as-is. The memory-aware hybrid re-plans from scratch because its
    /// state→table assignment is a global optimization.
    ///
    /// The node universe may have **grown** since construction (open-world
    /// streaming): nodes past the old universe get fresh buckets, built from
    /// scratch whether or not they appear in `touched`. It can never shrink —
    /// retired nodes keep their (empty-bucket) rows.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has fewer nodes than the graph the manager was
    /// built over (the id space never shrinks; retirement empties a row).
    pub fn maintain_topology<M: RandomWalkModel + ?Sized>(
        &mut self,
        graph: &Graph,
        model: &M,
        touched: &[NodeId],
        stale: &[NodeId],
    ) -> MaintenanceStats {
        let n = graph.num_nodes();
        let old_n = self.bucket_offsets.len() - 1;
        assert!(
            n >= old_n,
            "maintain_topology cannot shrink the node universe ({n} < {old_n})"
        );
        let mut is_touched = vec![false; n];
        for &v in touched {
            is_touched[v as usize] = true;
        }
        // Grown nodes have no prior sampler state: always (re)built.
        for t in is_touched.iter_mut().take(n).skip(old_n) {
            *t = true;
        }
        let mut is_stale = vec![false; n];
        for &v in stale {
            is_stale[v as usize] = true;
        }

        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0usize);
        for v in 0..n as NodeId {
            let prev = *new_offsets.last().expect("non-empty");
            new_offsets.push(prev + model.bucket_size(graph, v));
        }
        let num_states = *new_offsets.last().expect("non-empty");

        let mut stats = MaintenanceStats::default();
        for &v in touched.iter().chain(stale) {
            stats.states_examined += new_offsets[v as usize + 1] - new_offsets[v as usize];
        }

        match &mut self.backend {
            Backend::Direct => {}
            Backend::MetropolisHastings { chains, .. } => {
                let old = std::mem::take(chains);
                let mut rebuilt = Vec::with_capacity(num_states);
                for v in 0..n {
                    let old_range = if v < old_n {
                        self.bucket_offsets[v]..self.bucket_offsets[v + 1]
                    } else {
                        0..0
                    };
                    let new_width = new_offsets[v + 1] - new_offsets[v];
                    // `stale` nodes keep their chains: only structural bucket
                    // changes invalidate a chain's index.
                    if !is_touched[v] && old_range.len() == new_width {
                        for idx in old_range {
                            rebuilt.push(AtomicMhChain::from_state(old[idx].last()));
                        }
                        stats.chains_preserved += new_width;
                    } else {
                        rebuilt.extend((0..new_width).map(|_| AtomicMhChain::new()));
                        stats.chains_reset += new_width;
                    }
                }
                *chains = rebuilt;
            }
            Backend::Alias { tables } => {
                let mut old = std::mem::take(tables);
                let mut rebuilt: Vec<Option<AliasTable>> = Vec::with_capacity(num_states);
                for v in 0..n {
                    let old_range = if v < old_n {
                        self.bucket_offsets[v]..self.bucket_offsets[v + 1]
                    } else {
                        0..0
                    };
                    let new_width = new_offsets[v + 1] - new_offsets[v];
                    if !is_touched[v] && !is_stale[v] && old_range.len() == new_width {
                        for idx in old_range {
                            rebuilt.push(old[idx].take());
                        }
                    } else {
                        let deg = graph.degree(v as NodeId);
                        for affixture in 0..new_width {
                            let table = build_one_table(graph, model, v as NodeId, affixture, deg);
                            stats.states_rebuilt += 1;
                            stats.bytes_rebuilt +=
                                table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                            rebuilt.push(table);
                        }
                    }
                }
                *tables = rebuilt;
            }
            Backend::Rejection { proposals, .. } => {
                // Proposals materialize only the node's own static weights,
                // so `stale` nodes (unchanged adjacency) keep theirs. Grown
                // nodes get fresh (empty) slots and are rebuilt like touched.
                proposals.resize_with(n, || None);
                for (v, _) in is_touched.iter().enumerate().filter(|&(_, &t)| t) {
                    let table = build_proposal(graph.weights(v as NodeId));
                    stats.states_rebuilt += 1;
                    stats.bytes_rebuilt += table.as_ref().map(|t| t.memory_bytes()).unwrap_or(0);
                    proposals[v] = table;
                }
            }
            Backend::MemoryAware { plan, tables } => {
                // The hybrid's alias/direct assignment is a global knapsack
                // over all states; a topology change forces a re-plan.
                let budget = plan.budget_bytes();
                let mut specs = Vec::with_capacity(num_states);
                for v in 0..n as NodeId {
                    let deg = graph.degree(v);
                    for _ in 0..(new_offsets[v as usize + 1] - new_offsets[v as usize]) {
                        specs.push((deg, deg as f64));
                    }
                }
                let new_plan = MemoryAwarePlan::plan(&specs, budget);
                let rebuilt = build_state_tables(graph, model, &new_offsets, Some(&new_plan));
                stats.states_rebuilt += rebuilt.iter().filter(|t| t.is_some()).count();
                stats.bytes_rebuilt += rebuilt
                    .iter()
                    .map(|t| t.as_ref().map(|t| t.memory_bytes()).unwrap_or(0))
                    .sum::<usize>();
                *plan = new_plan;
                *tables = rebuilt;
            }
        }
        self.bucket_offsets = new_offsets;
        stats
    }

    /// KnightKing-style sampling: outliers folded out of the rejection area.
    fn sample_with_folding<M: RandomWalkModel + ?Sized, R: Rng, F: Fn(usize) -> f32>(
        &self,
        graph: &Graph,
        model: &M,
        state: WalkerState,
        proposal: &AliasTable,
        weight: &F,
        rng: &mut R,
    ) -> Option<usize> {
        let v = state.position;
        let deg = graph.degree(v);
        let bound = model.outlier_folding_bound(graph, state);
        let outliers = model.outliers(graph, state);

        let static_total: f64 = graph.weights(v).iter().map(|&w| w as f64).sum();
        let regular_mass = bound as f64 * static_total;
        let mut outlier_excess: Vec<f64> = Vec::with_capacity(outliers.len());
        let mut outlier_mass = 0.0f64;
        for &o in &outliers {
            let excess = (weight(o as usize) as f64
                - bound as f64 * graph.weight_at(v, o as usize) as f64)
                .max(0.0);
            outlier_excess.push(excess);
            outlier_mass += excess;
        }
        // The area is re-drawn on every attempt so that a rejection in the
        // regular area restarts the whole two-area procedure (see
        // `OutlierFoldingSampler::sample` for the correctness argument).
        for _ in 0..MAX_REJECTION_ATTEMPTS {
            if outlier_mass > 0.0 && rng.gen_range(0.0..regular_mass + outlier_mass) >= regular_mass
            {
                let mut target = rng.gen_range(0.0..outlier_mass);
                for (i, &excess) in outlier_excess.iter().enumerate() {
                    if target < excess {
                        return Some(outliers[i] as usize);
                    }
                    target -= excess;
                }
                return Some(outliers[outliers.len() - 1] as usize);
            }
            let candidate = proposal.sample(rng);
            let cap = bound * graph.weight_at(v, candidate);
            let w = weight(candidate).min(cap);
            if rng.gen::<f32>() * cap < w {
                return Some(candidate);
            }
        }
        direct_sample_fn(deg, weight, rng)
    }
}

/// Materializes the alias table of one walker state's dynamic weights
/// (`None` for isolated nodes and all-zero distributions).
fn build_one_table<M: RandomWalkModel + ?Sized>(
    graph: &Graph,
    model: &M,
    v: NodeId,
    affixture: usize,
    deg: usize,
) -> Option<AliasTable> {
    if deg == 0 {
        return None;
    }
    let state = WalkerState::new(v, affixture as u32);
    let weights: Vec<f32> = (0..deg)
        .map(|k| {
            model
                .calculate_weight(graph, state, graph.edge_ref(v, k))
                .max(0.0)
        })
        .collect();
    if weights.iter().all(|&w| w <= 0.0) {
        None
    } else {
        Some(AliasTable::new(&weights))
    }
}

/// Materializes the static-weight proposal table of one node for the
/// rejection-family samplers (`None` for isolated nodes / all-zero weights).
fn build_proposal(weights: &[f32]) -> Option<AliasTable> {
    if weights.is_empty() || weights.iter().all(|&w| w <= 0.0) {
        None
    } else {
        Some(AliasTable::new(weights))
    }
}

/// Materializes per-state alias tables of the dynamic weights. When `plan` is
/// given, only states assigned [`StateSamplerKind::Alias`] get a table.
fn build_state_tables<M: RandomWalkModel + ?Sized>(
    graph: &Graph,
    model: &M,
    bucket_offsets: &[usize],
    plan: Option<&MemoryAwarePlan>,
) -> Vec<Option<AliasTable>> {
    let num_states = *bucket_offsets.last().expect("non-empty");
    let mut tables: Vec<Option<AliasTable>> = Vec::with_capacity(num_states);
    for v in 0..(bucket_offsets.len() - 1) as NodeId {
        let deg = graph.degree(v);
        let bucket = bucket_offsets[v as usize + 1] - bucket_offsets[v as usize];
        for affixture in 0..bucket {
            let idx = bucket_offsets[v as usize] + affixture;
            if plan.is_some_and(|p| p.kind(idx) != StateSamplerKind::Alias) {
                tables.push(None);
            } else {
                tables.push(build_one_table(graph, model, v, affixture, deg));
            }
        }
    }
    tables
}

/// Estimated bytes a full alias materialization would need for `model` over
/// `graph` — the quantity that causes the out-of-memory failures in Table VII.
pub fn alias_memory_estimate<M: RandomWalkModel + ?Sized>(graph: &Graph, model: &M) -> usize {
    (0..graph.num_nodes() as NodeId)
        .map(|v| model.bucket_size(graph, v) * alias_table_bytes(graph.degree(v)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{DeepWalk, MetaPath2Vec, Node2Vec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uninet_graph::{GraphBuilder, Metapath};

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &[
            (0u32, 1u32, 1.0f32),
            (0, 2, 2.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
        ] {
            b.add_edge(u, v, w);
        }
        b.symmetric(true).build()
    }

    fn all_kinds() -> Vec<EdgeSamplerKind> {
        vec![
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 20 }),
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Direct,
            EdgeSamplerKind::Rejection,
            EdgeSamplerKind::KnightKing,
            EdgeSamplerKind::MemoryAware,
        ]
    }

    #[test]
    fn state_count_matches_model() {
        let g = small_graph();
        let dw = SamplerManager::new(&g, &DeepWalk::new(), EdgeSamplerKind::Direct, 0);
        assert_eq!(dw.num_states(), g.num_nodes());
        let n2v = Node2Vec::new(1.0, 1.0);
        let m = SamplerManager::new(&g, &n2v, EdgeSamplerKind::Direct, 0);
        assert_eq!(m.num_states(), g.num_edges());
    }

    #[test]
    fn state_index_is_within_bounds_and_unique_per_bucket() {
        let g = small_graph();
        let n2v = Node2Vec::new(1.0, 1.0);
        let m = SamplerManager::new(&g, &n2v, EdgeSamplerKind::Direct, 0);
        let mut seen = std::collections::HashSet::new();
        for v in 0..g.num_nodes() as NodeId {
            for a in 0..g.degree(v) as u32 {
                let idx = m.state_index(WalkerState::new(v, a));
                assert!(idx < m.num_states());
                assert!(seen.insert(idx), "duplicate index {idx}");
            }
        }
    }

    #[test]
    fn every_sampler_kind_produces_valid_edges() {
        let g = small_graph();
        let model = Node2Vec::new(0.5, 2.0);
        for kind in all_kinds() {
            let manager = SamplerManager::new(&g, &model, kind, 0);
            let mut rng = SmallRng::seed_from_u64(7);
            for v in 0..g.num_nodes() as NodeId {
                let state = model.initial_state(&g, v);
                for _ in 0..50 {
                    let k = manager
                        .sample(&g, &model, state, &mut rng)
                        .unwrap_or_else(|| panic!("{kind:?} failed to sample"));
                    assert!(k < g.degree(v), "{kind:?} returned invalid index");
                }
            }
        }
    }

    #[test]
    fn deepwalk_samplers_respect_weights() {
        // Node 0 has neighbors 1 (w=1), 2 (w=2), 3 (w=1): expect ~25%/50%/25%.
        let g = small_graph();
        let model = DeepWalk::new();
        for kind in all_kinds() {
            let manager = SamplerManager::new(&g, &model, kind, 0);
            let mut rng = SmallRng::seed_from_u64(11);
            let state = model.initial_state(&g, 0);
            let deg = g.degree(0);
            let mut counts = vec![0usize; deg];
            let draws = 60_000;
            for _ in 0..draws {
                counts[manager.sample(&g, &model, state, &mut rng).unwrap()] += 1;
            }
            let total_w: f32 = g.weights(0).iter().sum();
            for (k, &count) in counts.iter().enumerate() {
                let expected = (g.weight_at(0, k) / total_w) as f64;
                let freq = count as f64 / draws as f64;
                assert!(
                    (freq - expected).abs() < 0.03,
                    "{kind:?}: neighbor {k} freq {freq} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn metapath_sampling_respects_type_constraint() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 2u32), (0, 3), (1, 2), (2, 4), (3, 4), (0, 1)] {
            b.add_edge(u, v, 1.0);
        }
        b.set_node_types(vec![0, 0, 1, 1, 2]);
        let g = b.symmetric(true).build();
        let model = MetaPath2Vec::new(Metapath::new(vec![0, 1, 0]));
        for kind in [
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Direct,
        ] {
            let manager = SamplerManager::new(&g, &model, kind, 0);
            let mut rng = SmallRng::seed_from_u64(13);
            let state = model.initial_state(&g, 0);
            for _ in 0..300 {
                let k = manager.sample(&g, &model, state, &mut rng).unwrap();
                let dst = g.neighbor_at(0, k);
                assert_eq!(g.node_type(dst), 1, "{kind:?} violated the metapath");
            }
        }
    }

    #[test]
    fn mh_memory_is_much_smaller_than_alias() {
        let g = uninet_graph::generators::rmat(&uninet_graph::generators::RmatConfig {
            num_nodes: 500,
            num_edges: 5000,
            weighted: true,
            ..Default::default()
        });
        let model = Node2Vec::new(0.25, 4.0);
        let mh = SamplerManager::new(
            &g,
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let alias = SamplerManager::new(&g, &model, EdgeSamplerKind::Alias, 0);
        assert!(alias.memory_bytes() > 3 * mh.memory_bytes());
        assert!(alias_memory_estimate(&g, &model) >= alias.memory_bytes() / 2);
    }

    #[test]
    fn memory_aware_respects_budget() {
        let g = small_graph();
        let model = Node2Vec::new(1.0, 1.0);
        let budget = 200usize;
        let manager = SamplerManager::new(&g, &model, EdgeSamplerKind::MemoryAware, budget);
        // The materialized tables can use at most the budget (plus the offsets array).
        let offsets = (g.num_nodes() + 1) * std::mem::size_of::<usize>();
        assert!(manager.memory_bytes() - offsets <= budget);
    }

    #[test]
    fn parallel_weight_maintenance_matches_serial() {
        let g = uninet_graph::generators::rmat(&uninet_graph::generators::RmatConfig {
            num_nodes: 200,
            num_edges: 1500,
            weighted: true,
            seed: 31,
            ..Default::default()
        });
        let model = Node2Vec::new(0.5, 2.0);
        let touched: Vec<NodeId> = (0..g.num_nodes() as NodeId)
            .filter(|&v| g.degree(v) > 0)
            .step_by(3)
            .collect();
        for kind in all_kinds() {
            let mut serial = SamplerManager::new(&g, &model, kind, 0);
            let mut parallel = SamplerManager::new(&g, &model, kind, 0);
            let s = serial.maintain_weights(&g, &model, &touched);
            let p = parallel.maintain_weights_parallel(&g, &model, &touched, 4);
            assert_eq!(s, p, "{kind:?} stats diverged");
            // The materialized distributions must agree: sample both managers
            // with identical RNGs and require identical draws.
            let mut rng_a = SmallRng::seed_from_u64(99);
            let mut rng_b = SmallRng::seed_from_u64(99);
            for &v in touched.iter().take(40) {
                let state = model.initial_state(&g, v);
                for _ in 0..20 {
                    assert_eq!(
                        serial.sample(&g, &model, state, &mut rng_a),
                        parallel.sample(&g, &model, state, &mut rng_b),
                        "{kind:?} sampling diverged at node {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn maintain_topology_accepts_grown_universe() {
        // 4-node square grows to 5 nodes with edges 4-0 (and a retired-style
        // empty row never exists here; degree-0 growth is covered below).
        let old = small_graph();
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &[
            (0u32, 1u32, 1.0f32),
            (0, 2, 2.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (4, 0, 1.5),
        ] {
            b.add_edge(u, v, w);
        }
        let grown = b.symmetric(true).build();
        let model = Node2Vec::new(0.5, 2.0);
        for kind in all_kinds() {
            let mut m = SamplerManager::new(&old, &model, kind, 0);
            // Node 4 arrived with an edge to 0: 0 is touched, 4 is implicit.
            m.maintain_topology(&grown, &model, &[0], &[]);
            assert_eq!(m.num_states(), grown.num_edges(), "{kind:?} state count");
            let mut rng = SmallRng::seed_from_u64(21);
            for v in [0u32, 4] {
                let state = model.initial_state(&grown, v);
                for _ in 0..30 {
                    let k = m
                        .sample(&grown, &model, state, &mut rng)
                        .unwrap_or_else(|| panic!("{kind:?} stuck at {v}"));
                    assert!(k < grown.degree(v));
                }
            }
        }

        // Degree-0 growth (arrival with no edges yet) must also be accepted.
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &[
            (0u32, 1u32, 1.0f32),
            (0, 2, 2.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
        ] {
            b.add_edge(u, v, w);
        }
        b.set_num_nodes(6);
        let grown_empty = b.symmetric(true).build();
        for kind in all_kinds() {
            let mut m = SamplerManager::new(&old, &model, kind, 0);
            m.maintain_topology(&grown_empty, &model, &[], &[]);
            let mut rng = SmallRng::seed_from_u64(3);
            assert_eq!(m.sample(&grown_empty, &model, WalkerState::at(5), &mut rng), None);
        }
    }

    #[test]
    fn isolated_node_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.set_num_nodes(3);
        let g = b.symmetric(true).build();
        let model = DeepWalk::new();
        let manager = SamplerManager::new(
            &g,
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            manager.sample(&g, &model, WalkerState::at(2), &mut rng),
            None
        );
    }
}
