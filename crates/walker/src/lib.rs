//! # uninet-walker
//!
//! The unified random-walk model abstraction of UniNet (Section IV of the
//! paper) and the machinery that executes walks at scale:
//!
//! * [`WalkerState`] — the 2D (position, affixture) decomposition of walker
//!   states used by the sampler manager's constant-time index (Figure 4).
//! * [`RandomWalkModel`] — the two-method programming interface
//!   (`calculate_weight` / `update_state`) with which any random-walk based
//!   NRL model is defined (Figure 3, Table IV).
//! * [`models`] — the five built-in models: DeepWalk, node2vec,
//!   metapath2vec, edge2vec and fairwalk.
//! * [`SamplerManager`] — per-state edge samplers laid out in the 2D bucket
//!   index; supports the M-H sampler as well as every baseline sampler
//!   (alias, direct, rejection, KnightKing-style, memory-aware).
//! * [`WalkEngine`] — multi-threaded random walk generation (Algorithm 2),
//!   with separately reported initialization and walking time.
//!
//! The crate sits between `uninet-graph`/`uninet-sampler` below and
//! `uninet-embedding` above: it turns a graph into a [`WalkCorpus`] that the
//! word2vec trainer consumes, and its [`SamplerManager`] is the state the
//! dynamic-graph layers maintain incrementally when edges change.
//!
//! ```
//! use uninet_graph::generators::ring_with_chords;
//! use uninet_walker::models::DeepWalk;
//! use uninet_walker::{WalkEngine, WalkEngineConfig};
//!
//! let graph = ring_with_chords(50, 3);
//! let config = WalkEngineConfig {
//!     num_walks: 1,
//!     walk_length: 8,
//!     num_threads: 1,
//!     ..Default::default()
//! };
//! let (corpus, _timing) = WalkEngine::new(config).generate(&graph, &DeepWalk::new());
//! assert_eq!(corpus.num_walks(), 50); // one walk per node
//! ```

pub mod engine;
pub mod manager;
pub mod model;
pub mod models;
pub mod state;
pub mod walk;

pub use engine::{walk_once, WalkEngine, WalkEngineConfig, WalkTiming};
pub use manager::{MaintenanceStats, SamplerManager};
pub use model::RandomWalkModel;
pub use models::{DeepWalk, Edge2Vec, FairWalk, MetaPath2Vec, Node2Vec};
pub use state::WalkerState;
pub use walk::WalkCorpus;

pub use uninet_sampler::{EdgeSamplerKind, InitStrategy};
