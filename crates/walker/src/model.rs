//! The unified random-walk model abstraction (Section IV-B).
//!
//! A random-walk model is defined entirely by
//! * the *state* a walker carries, and
//! * the *dynamic edge weight* `w'(state, edge)` — the unnormalized transition
//!   weight of a candidate edge under that state (Table IV),
//!
//! mirrored by the two programming interfaces the paper exposes:
//! `CALCULATEWEIGHT` and `UPDATESTATE` (Figure 3). Because UniNet's M-H edge
//! sampler consumes unnormalized weights directly, implementors never need to
//! compute normalization constants.

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::state::WalkerState;

/// A user-definable random-walk model.
///
/// Implementations must be cheap to call: `calculate_weight` sits on the hot
/// path of every sampling step (it is invoked twice per M-H step).
pub trait RandomWalkModel: Send + Sync {
    /// Human-readable model name (used in reports).
    fn name(&self) -> &'static str;

    /// The unnormalized dynamic edge weight `w'_{x,(v,u)}` of taking edge
    /// `next` when the walker is in `state` (Table IV).
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32;

    /// The state after the walker traverses `next`.
    fn update_state(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> WalkerState;

    /// The state of a fresh walker standing on `start` before its first step.
    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        let _ = graph;
        WalkerState::at(start)
    }

    /// The number of affixture slots (bucket size) needed for states whose
    /// position is `v` — e.g. 1 for DeepWalk, `deg(v)` for node2vec,
    /// the metapath length for metapath2vec. Drives the 2D sampler layout.
    fn bucket_size(&self, graph: &Graph, v: NodeId) -> usize;

    /// Total number of walker states over the whole graph (`#state` in
    /// Table I); the default sums the per-node bucket sizes.
    fn num_states(&self, graph: &Graph) -> usize {
        (0..graph.num_nodes() as NodeId)
            .map(|v| self.bucket_size(graph, v))
            .sum()
    }

    /// An upper bound `B` such that `w'(state, e) <= B * static_weight(e)` for
    /// every edge `e` leaving `state.position`. Rejection-based samplers use
    /// this as their acceptance bound; the default (1.0) is correct for models
    /// whose dynamic weight never exceeds the static weight.
    fn rejection_bound(&self, graph: &Graph, state: WalkerState) -> f32 {
        let _ = (graph, state);
        1.0
    }

    /// Neighbor indices whose dynamic weight may exceed
    /// `outlier_folding_bound * static_weight` — the "outliers" that a
    /// KnightKing-style sampler folds out of the rejection area. The default
    /// is the empty set (no outliers).
    fn outliers(&self, graph: &Graph, state: WalkerState) -> Vec<u32> {
        let _ = (graph, state);
        Vec::new()
    }

    /// The tighter bound that applies to non-outlier neighbors when outlier
    /// folding is used. Defaults to the plain rejection bound.
    fn outlier_folding_bound(&self, graph: &Graph, state: WalkerState) -> f32 {
        self.rejection_bound(graph, state)
    }

    /// Whether the transition distribution of this model actually depends on
    /// the dynamic state (false for first-order models like DeepWalk, whose
    /// distributions can be fully precomputed per node).
    fn is_second_order(&self) -> bool {
        true
    }
}

/// Blanket implementation so `Box<dyn RandomWalkModel>` and references can be
/// passed wherever a model is expected.
impl<M: RandomWalkModel + ?Sized> RandomWalkModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32 {
        (**self).calculate_weight(graph, state, next)
    }
    fn update_state(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> WalkerState {
        (**self).update_state(graph, state, next)
    }
    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        (**self).initial_state(graph, start)
    }
    fn bucket_size(&self, graph: &Graph, v: NodeId) -> usize {
        (**self).bucket_size(graph, v)
    }
    fn num_states(&self, graph: &Graph) -> usize {
        (**self).num_states(graph)
    }
    fn rejection_bound(&self, graph: &Graph, state: WalkerState) -> f32 {
        (**self).rejection_bound(graph, state)
    }
    fn outliers(&self, graph: &Graph, state: WalkerState) -> Vec<u32> {
        (**self).outliers(graph, state)
    }
    fn outlier_folding_bound(&self, graph: &Graph, state: WalkerState) -> f32 {
        (**self).outlier_folding_bound(graph, state)
    }
    fn is_second_order(&self) -> bool {
        (**self).is_second_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    /// A trivial model used to exercise the default trait methods.
    struct UniformModel;

    impl RandomWalkModel for UniformModel {
        fn name(&self) -> &'static str {
            "uniform"
        }
        fn calculate_weight(&self, _: &Graph, _: WalkerState, next: EdgeRef) -> f32 {
            next.weight
        }
        fn update_state(&self, _: &Graph, _: WalkerState, next: EdgeRef) -> WalkerState {
            WalkerState::at(next.dst)
        }
        fn bucket_size(&self, _: &Graph, _: NodeId) -> usize {
            1
        }
        fn is_second_order(&self) -> bool {
            false
        }
    }

    fn path_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.symmetric(true).build()
    }

    #[test]
    fn default_num_states_sums_buckets() {
        let g = path_graph();
        let m = UniformModel;
        assert_eq!(m.num_states(&g), 3);
    }

    #[test]
    fn default_initial_state_is_position_only() {
        let g = path_graph();
        let m = UniformModel;
        assert_eq!(m.initial_state(&g, 2), WalkerState::at(2));
    }

    #[test]
    fn default_rejection_bound_and_outliers() {
        let g = path_graph();
        let m = UniformModel;
        let s = WalkerState::at(1);
        assert_eq!(m.rejection_bound(&g, s), 1.0);
        assert_eq!(m.outlier_folding_bound(&g, s), 1.0);
        assert!(m.outliers(&g, s).is_empty());
    }

    #[test]
    fn reference_forwarding_works() {
        let g = path_graph();
        let m = UniformModel;
        let r: &dyn RandomWalkModel = &m;
        assert_eq!(r.name(), "uniform");
        assert_eq!((&r).num_states(&g), 3);
        assert!(!m.is_second_order());
    }
}
