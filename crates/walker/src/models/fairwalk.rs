//! fairwalk (Rahman et al., IJCAI'19): node2vec-style walks that first pick a
//! neighbor *type group* uniformly and then sample inside the group, removing
//! the bias caused by majority attributes (Eq. 5 / Table IV).

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::model::RandomWalkModel;
use crate::models::{node2vec_alpha, previous_node, second_order_initial, second_order_update};
use crate::state::WalkerState;

/// The fairwalk random-walk model.
///
/// Following Table IV, the unnormalized dynamic weight of a candidate edge
/// `(v, u)` is `α_u · w_{vu} / |K|` where `K = {k ∈ N(v) : Φ(k) = Φ(u)}` — the
/// division by the group size equalizes the total mass given to each node-type
/// group. Per-node group sizes are precomputed at model construction so the
/// hot path stays `O(log deg)` like node2vec.
#[derive(Debug, Clone)]
pub struct FairWalk {
    /// Return parameter `p`.
    pub p: f32,
    /// In-out parameter `q`.
    pub q: f32,
    /// `group_size[v * num_types + t]` = number of neighbors of `v` with type `t`.
    group_size: Vec<u32>,
    num_types: usize,
}

impl FairWalk {
    /// Creates a fairwalk model, precomputing per-node neighbor type counts.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is not strictly positive.
    pub fn new(graph: &Graph, p: f32, q: f32) -> Self {
        assert!(p > 0.0 && q > 0.0, "fairwalk parameters must be positive");
        let num_types = graph.num_node_types() as usize;
        let n = graph.num_nodes();
        let mut group_size = vec![0u32; n * num_types];
        for v in 0..n as NodeId {
            for &u in graph.neighbors(v) {
                group_size[v as usize * num_types + graph.node_type(u) as usize] += 1;
            }
        }
        FairWalk {
            p,
            q,
            group_size,
            num_types,
        }
    }

    /// Number of neighbors of `v` sharing the node type `t`.
    #[inline]
    pub fn neighbors_of_type(&self, v: NodeId, t: u16) -> u32 {
        self.group_size[v as usize * self.num_types + t as usize]
    }
}

impl RandomWalkModel for FairWalk {
    fn name(&self) -> &'static str {
        "fairwalk"
    }

    #[inline]
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32 {
        let prev = previous_node(graph, state);
        let alpha = node2vec_alpha(graph, prev, next.dst, self.p, self.q);
        let group = self
            .neighbors_of_type(state.position, graph.node_type(next.dst))
            .max(1);
        alpha * next.weight / group as f32
    }

    #[inline]
    fn update_state(&self, graph: &Graph, _state: WalkerState, next: EdgeRef) -> WalkerState {
        second_order_update(graph, next)
    }

    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        second_order_initial(graph, start)
    }

    fn bucket_size(&self, graph: &Graph, v: NodeId) -> usize {
        graph.degree(v).max(1)
    }

    fn rejection_bound(&self, _graph: &Graph, _state: WalkerState) -> f32 {
        // α ≤ max(1, 1/p, 1/q) and the group divisor is at least 1.
        (1.0f32).max(1.0 / self.p).max(1.0 / self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    /// Node 0 is connected to three type-1 nodes (1,2,3) and one type-2 node (4),
    /// plus node 5 (type 0) from which the walker arrived.
    fn attributed_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for dst in 1u32..=5 {
            b.add_edge(0, dst, 1.0);
        }
        // Ring among the leaves so distance-1 cases exist.
        b.add_edge(1, 2, 1.0);
        b.set_node_types(vec![0, 1, 1, 1, 2, 0]);
        b.symmetric(true).build()
    }

    fn state_after(graph: &Graph, s: u32, v: u32) -> WalkerState {
        WalkerState::new(v, graph.find_neighbor(v, s).unwrap() as u32)
    }

    #[test]
    fn group_sizes_are_counted() {
        let g = attributed_graph();
        let m = FairWalk::new(&g, 1.0, 1.0);
        assert_eq!(m.neighbors_of_type(0, 1), 3);
        assert_eq!(m.neighbors_of_type(0, 2), 1);
        assert_eq!(m.neighbors_of_type(0, 0), 1);
    }

    #[test]
    fn minority_type_gets_equal_group_mass() {
        let g = attributed_graph();
        let m = FairWalk::new(&g, 1.0, 1.0);
        let state = state_after(&g, 5, 0);
        // Sum of dynamic weights per type group must be equal (each group's
        // total is 1.0 with unit static weights and α = 1 away from prev).
        let mut mass_type1 = 0.0;
        let mut mass_type2 = 0.0;
        for e in g.edges_of(0) {
            if e.dst == 5 {
                continue; // return edge has a different α
            }
            let w = m.calculate_weight(&g, state, e);
            match g.node_type(e.dst) {
                1 => mass_type1 += w,
                2 => mass_type2 += w,
                _ => {}
            }
        }
        assert!(
            (mass_type1 - mass_type2).abs() < 1e-6,
            "{mass_type1} vs {mass_type2}"
        );
    }

    #[test]
    fn alpha_still_applies() {
        let g = attributed_graph();
        let m = FairWalk::new(&g, 0.5, 1.0);
        let state = state_after(&g, 5, 0);
        let back = g.edge_ref(0, g.find_neighbor(0, 5).unwrap());
        // Return edge: α = 1/p = 2, group of type-0 neighbors of node 0 is {5} → size 1.
        assert!((m.calculate_weight(&g, state, back) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn homogeneous_graph_reduces_to_scaled_node2vec() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let g = b.symmetric(true).build();
        let fw = FairWalk::new(&g, 1.0, 1.0);
        let n2v = crate::models::Node2Vec::new(1.0, 1.0);
        let state = state_after(&g, 0, 2);
        let deg = g.degree(2) as f32;
        for e in g.edges_of(2) {
            // single type group = whole neighborhood, so fairwalk = node2vec / deg
            let expected = n2v.calculate_weight(&g, state, e) / deg;
            assert!((fw.calculate_weight(&g, state, e) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn bound_and_states() {
        let g = attributed_graph();
        let m = FairWalk::new(&g, 0.25, 2.0);
        let state = state_after(&g, 5, 0);
        let bound = m.rejection_bound(&g, state);
        for e in g.edges_of(0) {
            assert!(m.calculate_weight(&g, state, e) <= bound * e.weight + 1e-6);
        }
        assert_eq!(m.num_states(&g), g.num_edges());
        assert_eq!(m.name(), "fairwalk");
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        let g = attributed_graph();
        let _ = FairWalk::new(&g, 1.0, -1.0);
    }
}
