//! edge2vec (Gao et al., BMC Bioinformatics'19): node2vec-style second-order
//! walks over heterogeneous networks, additionally biased by an edge-type
//! transition matrix `M` (Eq. 3).

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::model::RandomWalkModel;
use crate::models::{node2vec_alpha, previous_node, second_order_initial, second_order_update};
use crate::state::WalkerState;

/// The edge2vec random-walk model.
///
/// The dynamic weight of a candidate edge `(v, u)` is
/// `α_u · M[Φ(s,v)][Φ(v,u)] · w_{vu}` where `Φ(s,v)` is the type of the edge
/// the walker just traversed. The state is the previous edge `(s, v)` (same
/// 2D layout as node2vec: affixture = local index of `s` in `N(v)`).
#[derive(Debug, Clone)]
pub struct Edge2Vec {
    /// Return parameter `p` (as in node2vec).
    pub p: f32,
    /// In-out parameter `q` (as in node2vec).
    pub q: f32,
    /// Row-major `num_edge_types x num_edge_types` transition matrix `M`.
    matrix: Vec<f32>,
    num_edge_types: usize,
}

impl Edge2Vec {
    /// Creates an edge2vec model with a uniform (all-ones) transition matrix.
    pub fn uniform(p: f32, q: f32, num_edge_types: usize) -> Self {
        Self::new(
            p,
            q,
            vec![1.0; num_edge_types * num_edge_types],
            num_edge_types,
        )
    }

    /// Creates an edge2vec model with an explicit edge-type transition matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `num_edge_types²` long, contains negative
    /// entries, or `p`/`q` are not positive.
    pub fn new(p: f32, q: f32, matrix: Vec<f32>, num_edge_types: usize) -> Self {
        assert!(p > 0.0 && q > 0.0, "edge2vec parameters must be positive");
        assert_eq!(
            matrix.len(),
            num_edge_types * num_edge_types,
            "matrix shape mismatch"
        );
        assert!(
            matrix.iter().all(|&m| m >= 0.0),
            "matrix entries must be non-negative"
        );
        Edge2Vec {
            p,
            q,
            matrix,
            num_edge_types,
        }
    }

    /// The transition factor `M[from][to]`; untyped edges (`u16::MAX`) get 1.0.
    #[inline]
    pub fn transition(&self, from: u16, to: u16) -> f32 {
        if from == u16::MAX || to == u16::MAX || self.num_edge_types == 0 {
            return 1.0;
        }
        let (from, to) = (from as usize, to as usize);
        if from >= self.num_edge_types || to >= self.num_edge_types {
            return 1.0;
        }
        self.matrix[from * self.num_edge_types + to]
    }

    /// Largest entry of the transition matrix (used for rejection bounds).
    fn max_transition(&self) -> f32 {
        self.matrix.iter().cloned().fold(1.0f32, f32::max)
    }
}

impl RandomWalkModel for Edge2Vec {
    fn name(&self) -> &'static str {
        "edge2vec"
    }

    #[inline]
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32 {
        let prev = previous_node(graph, state);
        // Type of the edge the walker arrived through: (v, s) mirrors (s, v).
        let prev_edge_type = graph.edge_type_at(state.position, state.affixture as usize);
        let next_edge_type = graph.edge_type_at(next.src, next.local_idx as usize);
        let alpha = node2vec_alpha(graph, prev, next.dst, self.p, self.q);
        alpha * self.transition(prev_edge_type, next_edge_type) * next.weight
    }

    #[inline]
    fn update_state(&self, graph: &Graph, _state: WalkerState, next: EdgeRef) -> WalkerState {
        second_order_update(graph, next)
    }

    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        second_order_initial(graph, start)
    }

    fn bucket_size(&self, graph: &Graph, v: NodeId) -> usize {
        graph.degree(v).max(1)
    }

    fn rejection_bound(&self, _graph: &Graph, _state: WalkerState) -> f32 {
        (1.0f32).max(1.0 / self.p).max(1.0 / self.q) * self.max_transition()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    /// Triangle 0-1-2 plus pendant 3 on node 2, with two edge types.
    fn typed_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_typed_edge(0, 1, 1.0, 0);
        b.add_typed_edge(1, 2, 1.0, 1);
        b.add_typed_edge(0, 2, 1.0, 0);
        b.add_typed_edge(2, 3, 1.0, 1);
        b.set_node_types(vec![0, 0, 1, 1]);
        b.symmetric(true).build()
    }

    fn state_after(graph: &Graph, s: u32, v: u32) -> WalkerState {
        WalkerState::new(v, graph.find_neighbor(v, s).unwrap() as u32)
    }

    #[test]
    fn uniform_matrix_reduces_to_node2vec() {
        let g = typed_graph();
        let e2v = Edge2Vec::uniform(0.5, 2.0, 2);
        let n2v = crate::models::Node2Vec::new(0.5, 2.0);
        let state = state_after(&g, 1, 2);
        for e in g.edges_of(2) {
            assert!(
                (e2v.calculate_weight(&g, state, e) - n2v.calculate_weight(&g, state, e)).abs()
                    < 1e-6
            );
        }
    }

    #[test]
    fn matrix_biases_edge_type_transitions() {
        let g = typed_graph();
        // Strongly prefer staying on the same edge type.
        let matrix = vec![
            10.0, 0.1, // from type 0
            0.1, 10.0, // from type 1
        ];
        let m = Edge2Vec::new(1.0, 1.0, matrix, 2);
        // Walker arrived 1 -> 2 over a type-1 edge.
        let state = state_after(&g, 1, 2);
        let to_3 = g.edge_ref(2, g.find_neighbor(2, 3).unwrap()); // type 1
        let to_0 = g.edge_ref(2, g.find_neighbor(2, 0).unwrap()); // type 0
        let w_same = m.calculate_weight(&g, state, to_3);
        let w_diff = m.calculate_weight(&g, state, to_0);
        assert!(w_same > 50.0 * w_diff, "same {w_same} diff {w_diff}");
    }

    #[test]
    fn transition_handles_untyped_and_out_of_range() {
        let m = Edge2Vec::uniform(1.0, 1.0, 2);
        assert_eq!(m.transition(u16::MAX, 0), 1.0);
        assert_eq!(m.transition(0, u16::MAX), 1.0);
        assert_eq!(m.transition(5, 0), 1.0);
    }

    #[test]
    fn rejection_bound_covers_weights() {
        let g = typed_graph();
        let matrix = vec![2.0, 0.5, 0.5, 3.0];
        let m = Edge2Vec::new(0.25, 2.0, matrix, 2);
        let state = state_after(&g, 0, 2);
        let bound = m.rejection_bound(&g, state);
        for e in g.edges_of(2) {
            assert!(m.calculate_weight(&g, state, e) <= bound * e.weight + 1e-6);
        }
    }

    #[test]
    fn num_states_is_e() {
        let g = typed_graph();
        let m = Edge2Vec::uniform(1.0, 1.0, 2);
        assert_eq!(m.num_states(&g), g.num_edges());
        assert_eq!(m.name(), "edge2vec");
    }

    #[test]
    #[should_panic]
    fn wrong_matrix_shape_panics() {
        let _ = Edge2Vec::new(1.0, 1.0, vec![1.0; 3], 2);
    }
}
