//! node2vec (Grover & Leskovec, KDD'16): second-order biased random walks
//! controlled by the return parameter `p` and the in-out parameter `q` (Eq. 2).

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::model::RandomWalkModel;
use crate::models::{node2vec_alpha, previous_node, second_order_initial, second_order_update};
use crate::state::WalkerState;

/// The node2vec random-walk model.
///
/// The walker state is the previously traversed edge `(s, v)`, giving `|E|`
/// states; the dynamic weight of a candidate edge `(v, u)` is `α_u · w_{vu}`
/// with `α` defined by the distance between `u` and `s`.
#[derive(Debug, Clone, Copy)]
pub struct Node2Vec {
    /// Return parameter `p`: small values keep the walk local.
    pub p: f32,
    /// In-out parameter `q`: small values push the walk outward.
    pub q: f32,
}

impl Default for Node2Vec {
    fn default() -> Self {
        Node2Vec { p: 1.0, q: 1.0 }
    }
}

impl Node2Vec {
    /// Creates a node2vec model with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is not strictly positive.
    pub fn new(p: f32, q: f32) -> Self {
        assert!(p > 0.0 && q > 0.0, "node2vec parameters must be positive");
        Node2Vec { p, q }
    }

    /// The maximum possible value of the bias factor α.
    fn max_alpha(&self) -> f32 {
        (1.0f32).max(1.0 / self.p).max(1.0 / self.q)
    }
}

impl RandomWalkModel for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    #[inline]
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32 {
        let prev = previous_node(graph, state);
        node2vec_alpha(graph, prev, next.dst, self.p, self.q) * next.weight
    }

    #[inline]
    fn update_state(&self, graph: &Graph, _state: WalkerState, next: EdgeRef) -> WalkerState {
        second_order_update(graph, next)
    }

    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        second_order_initial(graph, start)
    }

    fn bucket_size(&self, graph: &Graph, v: NodeId) -> usize {
        graph.degree(v).max(1)
    }

    fn rejection_bound(&self, _graph: &Graph, _state: WalkerState) -> f32 {
        self.max_alpha()
    }

    fn outliers(&self, graph: &Graph, state: WalkerState) -> Vec<u32> {
        // The only neighbor whose α can exceed max(1, 1/q) is the return edge
        // (α = 1/p); fold it out when p gives it an outsized factor.
        if 1.0 / self.p > (1.0f32).max(1.0 / self.q) {
            let prev = previous_node(graph, state);
            if let Some(k) = graph.find_neighbor(state.position, prev) {
                return vec![k as u32];
            }
        }
        Vec::new()
    }

    fn outlier_folding_bound(&self, _graph: &Graph, _state: WalkerState) -> f32 {
        (1.0f32).max(1.0 / self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    /// Path 0-1-2 plus triangle edge 0-2 and a pendant 3 attached to 2.
    fn test_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.symmetric(true).build()
    }

    /// Builds the state "walker moved s -> v".
    fn state_after(graph: &Graph, s: u32, v: u32) -> WalkerState {
        let k = graph.find_neighbor(v, s).unwrap() as u32;
        WalkerState::new(v, k)
    }

    #[test]
    fn weights_follow_eq2() {
        let g = test_graph();
        let m = Node2Vec::new(0.5, 2.0);
        // Walker came from 1 and sits on 2. Candidates: 0 (dist 1), 1 (return), 3 (dist 2).
        let state = state_after(&g, 1, 2);
        let w_return = m.calculate_weight(&g, state, g.edge_ref(2, g.find_neighbor(2, 1).unwrap()));
        let w_near = m.calculate_weight(&g, state, g.edge_ref(2, g.find_neighbor(2, 0).unwrap()));
        let w_far = m.calculate_weight(&g, state, g.edge_ref(2, g.find_neighbor(2, 3).unwrap()));
        assert!((w_return - 2.0).abs() < 1e-6); // 1/p = 2
        assert!((w_near - 1.0).abs() < 1e-6);
        assert!((w_far - 0.5).abs() < 1e-6); // 1/q = 0.5
    }

    #[test]
    fn uniform_parameters_reduce_to_deepwalk() {
        let g = test_graph();
        let m = Node2Vec::new(1.0, 1.0);
        let state = state_after(&g, 0, 2);
        for e in g.edges_of(2) {
            assert_eq!(m.calculate_weight(&g, state, e), e.weight);
        }
    }

    #[test]
    fn update_state_tracks_previous_edge() {
        let g = test_graph();
        let m = Node2Vec::default();
        let state = state_after(&g, 0, 2);
        let next = g.edge_ref(2, g.find_neighbor(2, 3).unwrap());
        let new_state = m.update_state(&g, state, next);
        assert_eq!(new_state.position, 3);
        assert_eq!(g.neighbor_at(3, new_state.affixture as usize), 2);
    }

    #[test]
    fn num_states_is_e() {
        let g = test_graph();
        let m = Node2Vec::default();
        assert_eq!(m.num_states(&g), g.num_edges());
        assert!(m.is_second_order());
    }

    #[test]
    fn rejection_bound_covers_alpha() {
        let g = test_graph();
        let m = Node2Vec::new(0.25, 4.0);
        let state = state_after(&g, 1, 2);
        let bound = m.rejection_bound(&g, state);
        for e in g.edges_of(2) {
            assert!(m.calculate_weight(&g, state, e) <= bound * e.weight + 1e-6);
        }
    }

    #[test]
    fn outlier_is_return_edge_when_p_small() {
        let g = test_graph();
        let m = Node2Vec::new(0.1, 1.0);
        let state = state_after(&g, 1, 2);
        let outliers = m.outliers(&g, state);
        assert_eq!(outliers.len(), 1);
        assert_eq!(g.neighbor_at(2, outliers[0] as usize), 1);
        assert!(m.outlier_folding_bound(&g, state) <= 1.0 + 1e-6);
        // No outliers when p is large.
        let m2 = Node2Vec::new(4.0, 1.0);
        assert!(m2.outliers(&g, state).is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        let _ = Node2Vec::new(0.0, 1.0);
    }
}
