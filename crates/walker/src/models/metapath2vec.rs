//! metapath2vec (Dong et al., KDD'17): metapath-guided random walks over
//! heterogeneous networks (Eq. 4).

use uninet_graph::{EdgeRef, Graph, Metapath, NodeId};

use crate::model::RandomWalkModel;
use crate::state::WalkerState;

/// The metapath2vec random-walk model.
///
/// The walker state is `(T, v)` where `T` is the node type the *next* node
/// must match according to the metapath. In the 2D layout the affixture is the
/// walker's current position inside the metapath cycle, from which `T`
/// follows; the bucket size is therefore the metapath cycle length.
#[derive(Debug, Clone)]
pub struct MetaPath2Vec {
    metapath: Metapath,
}

impl MetaPath2Vec {
    /// Creates the model from a metapath (e.g. Author–Paper–Author = `[0,1,0]`).
    pub fn new(metapath: Metapath) -> Self {
        MetaPath2Vec { metapath }
    }

    /// The guiding metapath.
    pub fn metapath(&self) -> &Metapath {
        &self.metapath
    }

    /// Number of distinct metapath positions (the bucket size).
    fn cycle_len(&self) -> usize {
        let types = self.metapath.types();
        if types[0] == types[types.len() - 1] {
            types.len() - 1
        } else {
            types.len()
        }
    }

    /// The node type required for the next step given the current metapath position.
    #[inline]
    fn required_type(&self, affixture: u32) -> u16 {
        self.metapath.next_type(affixture as usize)
    }

    /// Finds the metapath position whose type matches `node_type`, preferring
    /// position 0. Used to start walks on nodes of any type.
    fn position_for_type(&self, node_type: u16) -> u32 {
        for pos in 0..self.cycle_len() {
            if self.metapath.type_at(pos) == node_type {
                return pos as u32;
            }
        }
        0
    }
}

impl RandomWalkModel for MetaPath2Vec {
    fn name(&self) -> &'static str {
        "metapath2vec"
    }

    #[inline]
    fn calculate_weight(&self, graph: &Graph, state: WalkerState, next: EdgeRef) -> f32 {
        if graph.node_type(next.dst) == self.required_type(state.affixture) {
            next.weight
        } else {
            0.0
        }
    }

    #[inline]
    fn update_state(&self, _graph: &Graph, state: WalkerState, next: EdgeRef) -> WalkerState {
        WalkerState::new(next.dst, (state.affixture + 1) % self.cycle_len() as u32)
    }

    fn initial_state(&self, graph: &Graph, start: NodeId) -> WalkerState {
        WalkerState::new(start, self.position_for_type(graph.node_type(start)))
    }

    fn bucket_size(&self, _graph: &Graph, _v: NodeId) -> usize {
        self.cycle_len()
    }

    fn is_second_order(&self) -> bool {
        // The distribution depends on the metapath position, not only on the
        // current node, so per-node precomputation alone is insufficient.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    /// A tiny bipartite-ish academic graph:
    /// authors {0,1} (type 0), papers {2,3} (type 1), venue {4} (type 2).
    fn academic_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 2u32), (0, 3), (1, 2), (2, 4), (3, 4)] {
            b.add_edge(u, v, 1.0);
        }
        b.set_node_types(vec![0, 0, 1, 1, 2]);
        b.symmetric(true).build()
    }

    fn apa() -> MetaPath2Vec {
        MetaPath2Vec::new(Metapath::new(vec![0, 1, 0]))
    }

    #[test]
    fn weight_is_zero_for_wrong_type() {
        let g = academic_graph();
        let m = apa();
        // Walker starts on author 0 (metapath position 0, next type must be paper=1).
        let state = m.initial_state(&g, 0);
        for e in g.edges_of(0) {
            let w = m.calculate_weight(&g, state, e);
            if g.node_type(e.dst) == 1 {
                assert_eq!(w, e.weight);
            } else {
                assert_eq!(w, 0.0);
            }
        }
        // From paper 2 at metapath position 1, the next node must be an author.
        let state2 = WalkerState::new(2, 1);
        let to_venue = g.edge_ref(2, g.find_neighbor(2, 4).unwrap());
        let to_author = g.edge_ref(2, g.find_neighbor(2, 0).unwrap());
        assert_eq!(m.calculate_weight(&g, state2, to_venue), 0.0);
        assert_eq!(m.calculate_weight(&g, state2, to_author), 1.0);
    }

    #[test]
    fn update_state_advances_metapath_position() {
        let g = academic_graph();
        let m = apa();
        let s0 = m.initial_state(&g, 0);
        assert_eq!(s0.affixture, 0);
        let next = g.edge_ref(0, g.find_neighbor(0, 2).unwrap());
        let s1 = m.update_state(&g, s0, next);
        assert_eq!(s1.position, 2);
        assert_eq!(s1.affixture, 1);
        let back = g.edge_ref(2, g.find_neighbor(2, 1).unwrap());
        let s2 = m.update_state(&g, s1, back);
        assert_eq!(s2.position, 1);
        assert_eq!(s2.affixture, 0, "APA cycle wraps back to position 0");
    }

    #[test]
    fn initial_state_matches_node_type() {
        let g = academic_graph();
        let m = apa();
        // A paper node starts at metapath position 1 (the paper slot).
        let s = m.initial_state(&g, 3);
        assert_eq!(s.affixture, 1);
        // A venue node has no slot in APA; fall back to position 0.
        let s_venue = m.initial_state(&g, 4);
        assert_eq!(s_venue.affixture, 0);
    }

    #[test]
    fn bucket_size_and_num_states() {
        let g = academic_graph();
        let m = apa();
        assert_eq!(m.bucket_size(&g, 0), 2);
        assert_eq!(m.num_states(&g), 2 * g.num_nodes());
        assert_eq!(m.name(), "metapath2vec");
        assert_eq!(m.metapath().types(), &[0, 1, 0]);
    }

    #[test]
    fn longer_metapath_cycles() {
        let g = academic_graph();
        // Author - Paper - Venue - Paper - Author
        let m = MetaPath2Vec::new(Metapath::new(vec![0, 1, 2, 1, 0]));
        assert_eq!(m.bucket_size(&g, 0), 4);
        let mut state = m.initial_state(&g, 0);
        // follow 0 -> 2 -> 4 -> 3 -> 0 and check the type constraint holds at each hop
        for &(cur, nxt) in &[(0u32, 2u32), (2, 4), (4, 3), (3, 0)] {
            let e = g.edge_ref(cur, g.find_neighbor(cur, nxt).unwrap());
            assert!(
                m.calculate_weight(&g, state, e) > 0.0,
                "step {cur}->{nxt} blocked"
            );
            state = m.update_state(&g, state, e);
        }
        assert_eq!(state.position, 0);
        assert_eq!(state.affixture, 0);
    }
}
