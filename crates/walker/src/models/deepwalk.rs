//! DeepWalk (Perozzi et al., KDD'14): first-order random walks whose
//! transition probability is proportional to the static edge weight (Eq. 1).

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::model::RandomWalkModel;
use crate::state::WalkerState;

/// The DeepWalk random-walk model. The walker state is just the current node,
/// so there are `|V|` states in total.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeepWalk;

impl DeepWalk {
    /// Creates the model.
    pub fn new() -> Self {
        DeepWalk
    }
}

impl RandomWalkModel for DeepWalk {
    fn name(&self) -> &'static str {
        "deepwalk"
    }

    #[inline]
    fn calculate_weight(&self, _graph: &Graph, _state: WalkerState, next: EdgeRef) -> f32 {
        next.weight
    }

    #[inline]
    fn update_state(&self, _graph: &Graph, _state: WalkerState, next: EdgeRef) -> WalkerState {
        WalkerState::at(next.dst)
    }

    fn initial_state(&self, _graph: &Graph, start: NodeId) -> WalkerState {
        WalkerState::at(start)
    }

    fn bucket_size(&self, _graph: &Graph, _v: NodeId) -> usize {
        1
    }

    fn is_second_order(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    fn weighted_star() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(0, 3, 3.0);
        b.symmetric(true).build()
    }

    #[test]
    fn weight_equals_static_weight() {
        let g = weighted_star();
        let m = DeepWalk::new();
        let state = WalkerState::at(0);
        for (k, e) in g.edges_of(0).enumerate() {
            assert_eq!(m.calculate_weight(&g, state, e), g.weight_at(0, k));
        }
    }

    #[test]
    fn state_is_just_the_destination() {
        let g = weighted_star();
        let m = DeepWalk::new();
        let e = g.edge_ref(0, 1);
        let s = m.update_state(&g, WalkerState::at(0), e);
        assert_eq!(s, WalkerState::at(e.dst));
    }

    #[test]
    fn num_states_is_v() {
        let g = weighted_star();
        let m = DeepWalk::new();
        assert_eq!(m.num_states(&g), g.num_nodes());
        assert!(!m.is_second_order());
        assert_eq!(m.name(), "deepwalk");
    }
}
