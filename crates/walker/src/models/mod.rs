//! The five built-in random-walk based NRL models of Table I / Table IV.
//!
//! | Model | State `x` | Dynamic weight of edge `(v, u)` |
//! |---|---|---|
//! | DeepWalk | `v` | `w_{vu}` |
//! | node2vec | `(s, v)` | `α · w_{vu}` |
//! | edge2vec | `(s, v)` | `α · M_{Φ(s,v),Φ(v,u)} · w_{vu}` |
//! | fairwalk | `(s, v)` | `α · w_{vu} / |K|`, `k ∈ K ⇔ Φ(k) = Φ(u)` |
//! | metapath2vec | `(T, v)` | `w_{vu}` if `Φ(u) = T`, else 0 |
//!
//! Each model only implements [`crate::RandomWalkModel::calculate_weight`] and
//! [`crate::RandomWalkModel::update_state`] (plus layout hints); everything
//! else — sampling, parallelism, state management — is provided by the
//! framework, exactly as advertised by the paper's unified abstraction.

mod deepwalk;
mod edge2vec;
mod fairwalk;
mod metapath2vec;
mod node2vec;

pub use deepwalk::DeepWalk;
pub use edge2vec::Edge2Vec;
pub use fairwalk::FairWalk;
pub use metapath2vec::MetaPath2Vec;
pub use node2vec::Node2Vec;

use uninet_graph::{EdgeRef, Graph, NodeId};

use crate::state::WalkerState;

/// Computes the node2vec bias factor `α_u` for a candidate edge `(v, u)` given
/// the previous node `s` (Eq. 2 of the paper):
///
/// * `1/p` if `u == s` (distance 0 — returning),
/// * `1`   if `u` is a neighbor of `s` (distance 1),
/// * `1/q` otherwise (distance 2 — exploring outward).
///
/// The `d(u,s) == 1` test is a binary search over `s`'s adjacency list, which
/// is the `O(log deg)` term in the paper's complexity analysis.
#[inline]
pub(crate) fn node2vec_alpha(
    graph: &Graph,
    prev: NodeId,
    candidate: NodeId,
    p: f32,
    q: f32,
) -> f32 {
    if candidate == prev {
        1.0 / p
    } else if graph.has_edge(prev, candidate) {
        1.0
    } else {
        1.0 / q
    }
}

/// Resolves the previous node `s` encoded in a second-order walker state:
/// the affixture is the local index of `s` inside `N(position)`.
#[inline]
pub(crate) fn previous_node(graph: &Graph, state: WalkerState) -> NodeId {
    graph.neighbor_at(state.position, state.affixture as usize)
}

/// Builds the follow-up state after traversing `next` for second-order models:
/// the new position is `next.dst` and the new affixture is the local index of
/// `next.src` inside `next.dst`'s adjacency list (falling back to 0 if the
/// reverse edge is missing, which only happens on directed inputs).
#[inline]
pub(crate) fn second_order_update(graph: &Graph, next: EdgeRef) -> WalkerState {
    let affixture = graph.find_neighbor(next.dst, next.src).unwrap_or(0) as u32;
    WalkerState::new(next.dst, affixture)
}

/// Initial state for second-order models: the walker "pretends" it arrived
/// from its own first neighbor (affixture 0), matching the reference
/// implementations that draw the first step from the static distribution.
#[inline]
pub(crate) fn second_order_initial(graph: &Graph, start: NodeId) -> WalkerState {
    let _ = graph;
    WalkerState::new(start, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    fn square_with_diagonal() -> Graph {
        // 0-1, 1-2, 2-3, 3-0, 0-2
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.add_edge(u, v, 1.0);
        }
        b.symmetric(true).build()
    }

    #[test]
    fn alpha_cases() {
        let g = square_with_diagonal();
        let (p, q) = (0.25, 4.0);
        // return to the previous node
        assert_eq!(node2vec_alpha(&g, 1, 1, p, q), 4.0);
        // candidate adjacent to previous node (distance 1): 0 and 1 are adjacent
        assert_eq!(node2vec_alpha(&g, 1, 0, p, q), 1.0);
        // candidate not adjacent to previous node (distance 2): 1 and 3 are not adjacent
        assert_eq!(node2vec_alpha(&g, 1, 3, p, q), 0.25);
    }

    #[test]
    fn second_order_update_finds_back_edge() {
        let g = square_with_diagonal();
        // Walker moves along edge (0 -> 2); new state position = 2, affixture = index of 0 in N(2).
        let e = g.edge_ref(0, g.find_neighbor(0, 2).unwrap());
        let s = second_order_update(&g, e);
        assert_eq!(s.position, 2);
        assert_eq!(g.neighbor_at(2, s.affixture as usize), 0);
        assert_eq!(previous_node(&g, s), 0);
    }

    #[test]
    fn second_order_initial_state() {
        let g = square_with_diagonal();
        let s = second_order_initial(&g, 3);
        assert_eq!(s.position, 3);
        assert_eq!(s.affixture, 0);
    }
}
