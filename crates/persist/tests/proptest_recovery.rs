//! The durability plane's headline property: **restart == no-restart**.
//!
//! A "durable process" applies an arbitrary mutation sequence in batches,
//! WAL-logging every batch and snapshotting on an arbitrary cadence. We then
//! crash it at an arbitrary byte offset into the log (optionally also
//! corrupting the newest snapshot to exercise fallback), recover, and demand
//! that the recovered graph/embeddings/epoch equal those of a process that
//! ran uninterrupted over the same durable prefix. Restarting the process
//! and feeding it the rest of the stream must then converge on exactly the
//! state of a process that never crashed at all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use uninet_dyngraph::{DynamicGraph, GraphMutation, UpdateBatch};
use uninet_embedding::Embeddings;
use uninet_graph::{Graph, GraphBuilder};
use uninet_persist::{
    list_snapshots, read_wal, recover, wal_path, write_snapshot, FsyncPolicy, PersistError,
    SamplerState, Snapshot, WalWriter,
};

const N: u32 = 8;
const WAL_HEADER: u64 = 8;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uninet-prop-rec-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_graph() -> Graph {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(N as usize);
    b.symmetric(true);
    for v in 0..N {
        b.add_edge(v, (v + 1) % N, 1.0 + v as f32 * 0.25);
    }
    b.build()
}

/// Deterministic stand-in for "the embedding matrix after `count` batches".
fn fake_embeddings(count: u64) -> Embeddings {
    let dim = 2usize;
    let flat: Vec<f32> = (0..N as usize * dim)
        .map(|i| count as f32 * 0.5 + i as f32 * 0.125)
        .collect();
    Embeddings::from_flat(dim, flat)
}

/// Edge ops over a slightly-too-large id range (exercising rejects) plus the
/// open-world node ops: arrivals can grow the universe past `N`, retirements
/// drop ids mid-stream, and a later arrival may resurrect a retired id.
fn mutation_strategy() -> impl Strategy<Value = GraphMutation> {
    (0u8..5, 0u32..N + 4, 0u32..N + 4, 1u32..64).prop_map(|(op, src, dst, w)| match op {
        0 => GraphMutation::AddEdge {
            src,
            dst,
            weight: w as f32 * 0.25,
        },
        1 => GraphMutation::RemoveEdge { src, dst },
        2 => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: w as f32 * 0.5,
        },
        3 => GraphMutation::AddNode { node: src },
        _ => GraphMutation::RemoveNode { node: src },
    })
}

/// Uninterrupted reference: the first `k` batches applied in order, yielding
/// the compacted graph and the canonical live mask (`None` = fully live).
fn reference_state(batches: &[UpdateBatch], k: usize) -> (Graph, Option<Vec<bool>>) {
    let mut dg = DynamicGraph::new(base_graph(), true);
    for b in &batches[..k] {
        for m in b.mutations() {
            dg.apply(*m);
        }
    }
    let mask = dg.live_mask().to_vec();
    let live = mask.iter().any(|&l| !l).then_some(mask);
    (dg.into_base(), live)
}

/// Bit-exact per-node adjacency fingerprint.
fn fingerprint(g: &Graph) -> Vec<Vec<(u32, u32)>> {
    (0..g.num_nodes() as u32)
        .map(|v| {
            g.neighbors(v)
                .iter()
                .zip(g.weights(v))
                .map(|(&n, &w)| (n, w.to_bits()))
                .collect()
        })
        .collect()
}

fn snap_at(dg: &DynamicGraph, count: u64, wal_seq: u64) -> Snapshot {
    let mask = dg.live_mask().to_vec();
    Snapshot {
        wal_seq,
        epoch: count,
        symmetric: true,
        sampler: SamplerState::default(),
        graph: dg.materialize(),
        embeddings: Some(fake_embeddings(count)),
        live: mask.iter().any(|&l| !l).then_some(mask),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn restart_equals_no_restart(
        muts in prop::collection::vec(mutation_strategy(), 1..72),
        batch_size in 1usize..6,
        cadence in 1usize..5,
        crash_frac in 0u32..=1000,
        corrupt_newest in any::<bool>(),
    ) {
        let dir = case_dir();
        let batches: Vec<UpdateBatch> = muts
            .chunks(batch_size)
            .map(|c| UpdateBatch::from_mutations(c.to_vec()))
            .collect();
        let total = batches.len();

        // ---- durable run until the crash ----------------------------------
        let mut dg = DynamicGraph::new(base_graph(), true);
        write_snapshot(&dir, &snap_at(&dg, 0, 0)).unwrap();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Never).unwrap();
        let mut snapshot_seqs = vec![0u64];
        for (i, b) in batches.iter().enumerate() {
            let seq = wal.append(b).unwrap();
            prop_assert_eq!(seq, i as u64 + 1);
            for m in b.mutations() {
                dg.apply(*m);
            }
            if (i + 1) % cadence == 0 {
                wal.sync().unwrap();
                write_snapshot(&dir, &snap_at(&dg, seq, seq)).unwrap();
                snapshot_seqs.push(seq);
            }
        }
        wal.sync().unwrap();
        drop(wal);

        // ---- crash: tear the log at an arbitrary byte offset --------------
        let path = wal_path(&dir);
        let full_len = std::fs::metadata(&path).unwrap().len();
        let crash_off = WAL_HEADER
            + ((full_len - WAL_HEADER) as f64 * crash_frac as f64 / 1000.0) as u64;
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(crash_off).unwrap();
        }
        if corrupt_newest && snapshot_seqs.len() > 1 {
            // Damage the newest snapshot so recovery must fall back.
            let newest = list_snapshots(&dir).unwrap().remove(0);
            let mut bytes = std::fs::read(&newest).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
            std::fs::write(&newest, &bytes).unwrap();
            snapshot_seqs.pop();
        }
        let chosen_snap = *snapshot_seqs.last().unwrap();

        // ---- recover and compare against the uninterrupted reference ------
        let rec = recover(&dir).unwrap();
        let surviving = read_wal(&path).unwrap().last_seq;
        let durable = chosen_snap.max(surviving) as usize;
        prop_assert_eq!(rec.last_wal_seq, durable as u64);
        prop_assert_eq!(rec.epoch, chosen_snap, "epoch comes from the chosen snapshot");
        let (ref_graph, ref_live) = reference_state(&batches, durable);
        prop_assert_eq!(
            fingerprint(&rec.graph),
            fingerprint(&ref_graph),
            "recovered graph must equal an uninterrupted run over the durable prefix"
        );
        prop_assert_eq!(
            rec.live, ref_live,
            "recovered live mask must equal an uninterrupted run's universe"
        );
        let expected_emb = fake_embeddings(chosen_snap);
        prop_assert_eq!(
            rec.embeddings.as_ref().unwrap().as_flat(),
            expected_emb.as_flat()
        );

        // ---- restart: reopen, feed the rest of the stream, recover again --
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(wal.last_seq(), surviving, "reopen resumes after the torn tail");
        for b in &batches[surviving as usize..] {
            wal.append(b).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let rec2 = recover(&dir).unwrap();
        prop_assert_eq!(rec2.last_wal_seq, total as u64);
        let (ref_graph2, ref_live2) = reference_state(&batches, total);
        prop_assert_eq!(
            fingerprint(&rec2.graph),
            fingerprint(&ref_graph2),
            "after restart + full replay the state equals a run that never crashed"
        );
        prop_assert_eq!(rec2.live, ref_live2, "restarted universe matches the no-crash run");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A WAL alone (no snapshot) is unrecoverable by construction — the durable
/// write path always seeds the directory with an initial snapshot.
#[test]
fn bare_wal_is_no_state() {
    let dir = case_dir();
    let mut wal = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
    let mut b = UpdateBatch::new();
    b.add_edge(0, 1, 1.0);
    wal.append(&b).unwrap();
    drop(wal);
    assert!(matches!(recover(&dir), Err(PersistError::NoState { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}
