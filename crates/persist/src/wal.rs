//! The write-ahead log: an append-only file of checksummed `UpdateBatch`es.
//!
//! # File layout
//!
//! ```text
//! header   := "UNWL" u32:version
//! record   := u32:payload_len  u64:seq  u32:crc32(seq_le ++ payload)  payload
//! payload  := u32:count  mutation*
//! mutation := u8:op(0=add 1=remove 2=reweight)  u32:src  u32:dst  [f32:weight]
//!           | u8:op(3=addnode 4=rmnode)  u32:node
//! ```
//!
//! Version history: v1 carried edge ops only (opcodes 0–2); v2 added the
//! open-world node ops (opcodes 3–4). Readers accept both versions — a v1 log
//! written by an older build replays unchanged — while fresh logs are always
//! written at the current version.
//!
//! Sequence numbers start at 1 and are contiguous; a gap means the file was
//! tampered with. Two failure modes are deliberately distinguished:
//!
//! * **Torn tail** — the *final* frame is incomplete or fails its checksum
//!   (the classic power-loss signature). The tail is truncated and the log is
//!   otherwise usable.
//! * **Corrupted record** — a frame fails its checksum (or decodes to
//!   garbage) while *further frames follow it*. That cannot be a torn write,
//!   so the log is rejected with [`PersistError::Corrupt`] instead of
//!   silently dropping acknowledged data.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use uninet_dyngraph::{GraphMutation, UpdateBatch};

use crate::codec::{crc32, Dec, DecodeError, Enc};
use crate::PersistError;

/// File name of the log inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";

const WAL_MAGIC: [u8; 4] = *b"UNWL";
const WAL_VERSION: u32 = 2;
/// Oldest on-disk version [`read_wal`] still decodes.
const WAL_MIN_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// Frame header: u32 len + u64 seq + u32 crc.
const FRAME_HEADER_LEN: usize = 16;
/// Sanity cap on a single record's payload (a batch of ~20M mutations).
const MAX_PAYLOAD_BYTES: u32 = 256 << 20;

/// When the log file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append — maximum durability, slowest.
    #[default]
    Always,
    /// `fsync` every N appends (and on close); a crash can lose < N batches.
    EveryN(u32),
    /// Never `fsync` explicitly; durability is whatever the OS page cache
    /// provides. Fastest, only for benchmarks and tests.
    Never,
}

/// Path of the log file inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

fn io_err(path: &Path, source: std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason: reason.into(),
    }
}

/// Encodes one batch as a WAL record payload (without the frame header).
pub fn encode_batch(batch: &UpdateBatch) -> Vec<u8> {
    let mut e = Enc::with_capacity(4 + batch.len() * 13);
    e.u32(batch.len() as u32);
    for m in batch.mutations() {
        match *m {
            GraphMutation::AddEdge { src, dst, weight } => {
                e.u8(0);
                e.u32(src);
                e.u32(dst);
                e.f32(weight);
            }
            GraphMutation::RemoveEdge { src, dst } => {
                e.u8(1);
                e.u32(src);
                e.u32(dst);
            }
            GraphMutation::UpdateWeight { src, dst, weight } => {
                e.u8(2);
                e.u32(src);
                e.u32(dst);
                e.f32(weight);
            }
            GraphMutation::AddNode { node } => {
                e.u8(3);
                e.u32(node);
            }
            GraphMutation::RemoveNode { node } => {
                e.u8(4);
                e.u32(node);
            }
        }
    }
    e.into_bytes()
}

/// Decodes a WAL record payload back into a batch.
pub fn decode_batch(payload: &[u8]) -> Result<UpdateBatch, DecodeError> {
    let mut d = Dec::new(payload);
    let count = d.u32()? as usize;
    let mut mutations = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let op = d.u8()?;
        let m = match op {
            0 => {
                let src = d.u32()?;
                let dst = d.u32()?;
                GraphMutation::AddEdge {
                    src,
                    dst,
                    weight: d.f32()?,
                }
            }
            1 => GraphMutation::RemoveEdge {
                src: d.u32()?,
                dst: d.u32()?,
            },
            2 => {
                let src = d.u32()?;
                let dst = d.u32()?;
                GraphMutation::UpdateWeight {
                    src,
                    dst,
                    weight: d.f32()?,
                }
            }
            3 => GraphMutation::AddNode { node: d.u32()? },
            4 => GraphMutation::RemoveNode { node: d.u32()? },
            other => {
                return Err(DecodeError {
                    offset: d.offset(),
                    reason: format!("unknown mutation opcode {other}"),
                })
            }
        };
        mutations.push(m);
    }
    d.finish()?;
    Ok(UpdateBatch::from_mutations(mutations))
}

/// Result of scanning a log file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Valid records in append order, as `(seq, batch)`.
    pub records: Vec<(u64, UpdateBatch)>,
    /// Sequence number of the last valid record (0 when the log is empty).
    pub last_seq: u64,
    /// Byte length of the valid prefix (header + intact frames).
    pub valid_len: u64,
    /// Bytes of torn tail found past the valid prefix (0 when the file ended
    /// cleanly on a frame boundary).
    pub torn_bytes: u64,
}

/// Reads and validates a log file.
///
/// A missing file yields an empty scan; a torn tail is reported (not an
/// error); mid-file corruption is rejected with [`PersistError::Corrupt`].
pub fn read_wal(path: &Path) -> Result<WalScan, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(io_err(path, e)),
    };
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt(path, 0, "file shorter than the WAL header"));
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(corrupt(path, 0, "bad magic (not a UniNet WAL)"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if !(WAL_MIN_VERSION..=WAL_VERSION).contains(&version) {
        return Err(corrupt(
            path,
            4,
            format!("unsupported WAL version {version}"),
        ));
    }

    let mut scan = WalScan {
        valid_len: HEADER_LEN,
        ..WalScan::default()
    };
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_LEN {
            // Partial frame header: torn tail.
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let seq = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        let crc = u32::from_le_bytes([
            bytes[pos + 12],
            bytes[pos + 13],
            bytes[pos + 14],
            bytes[pos + 15],
        ]);
        let frame_end = pos + FRAME_HEADER_LEN + len as usize;
        if len > MAX_PAYLOAD_BYTES || frame_end > bytes.len() {
            // The frame claims more bytes than the file holds: torn tail.
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER_LEN..frame_end];
        let mut checked = Vec::with_capacity(8 + payload.len());
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(payload);
        if crc32(&checked) != crc {
            if frame_end == bytes.len() {
                // Checksum failure on the final frame: torn write.
                break;
            }
            return Err(corrupt(
                path,
                pos as u64,
                format!("record seq {seq} fails its checksum with records following it"),
            ));
        }
        if seq != scan.last_seq + 1 {
            return Err(corrupt(
                path,
                pos as u64,
                format!("sequence gap: expected {}, found {seq}", scan.last_seq + 1),
            ));
        }
        let batch = decode_batch(payload).map_err(|e| {
            corrupt(
                path,
                pos as u64 + FRAME_HEADER_LEN as u64 + e.offset as u64,
                e.reason,
            )
        })?;
        scan.records.push((seq, batch));
        scan.last_seq = seq;
        pos = frame_end;
        scan.valid_len = pos as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// Appending handle over a WAL directory's log file.
///
/// Opening scans the existing log (if any), truncates a torn tail, and
/// continues the sequence where the valid prefix left off.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    policy: FsyncPolicy,
    unsynced: u32,
    bytes_written: u64,
    truncated_tail: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("policy", &self.policy)
            .finish()
    }
}

impl WalWriter {
    /// Opens (or creates) the log inside `dir` for appending.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<Self, PersistError> {
        let path = wal_path(dir);
        let fresh = !path.exists();
        let (next_seq, truncated_tail) = if fresh {
            (1, 0)
        } else {
            let scan = read_wal(&path)?;
            if scan.torn_bytes > 0 {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                f.set_len(scan.valid_len).map_err(|e| io_err(&path, e))?;
                f.sync_all().map_err(|e| io_err(&path, e))?;
            }
            (scan.last_seq + 1, scan.torn_bytes)
        };
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        if fresh {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err(&path, e))?;
            file.sync_all().map_err(|e| io_err(&path, e))?;
        }
        let bytes_written = file.metadata().map_err(|e| io_err(&path, e))?.len();
        Ok(WalWriter {
            file,
            path,
            next_seq,
            policy,
            unsynced: 0,
            bytes_written,
            truncated_tail,
        })
    }

    /// Appends one batch, returning its sequence number.
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<u64, PersistError> {
        let seq = self.next_seq;
        let payload = encode_batch(batch);
        let mut checked = Vec::with_capacity(8 + payload.len());
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(&payload);
        let crc = crc32(&checked);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.bytes_written += frame.len() as u64;
        self.next_seq += 1;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Sequence number of the last appended (or recovered) record; 0 when the
    /// log is empty.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current size of the log file in bytes.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes of torn tail discarded when the log was opened.
    pub fn truncated_tail(&self) -> u64 {
        self.truncated_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(tag: u32) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.add_edge(tag, tag + 1, tag as f32 * 0.5)
            .update_weight(tag + 1, tag, 2.0)
            .remove_edge(tag, tag + 2);
        b
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uninet-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn batch_payload_round_trips() {
        let b = batch(7);
        let payload = encode_batch(&b);
        let back = decode_batch(&payload).unwrap();
        assert_eq!(back.mutations(), b.mutations());
    }

    #[test]
    fn node_ops_round_trip_through_the_log() {
        let mut b = UpdateBatch::new();
        b.add_node(12);
        b.add_edge(12, 3, 1.5);
        b.remove_node(7);
        let back = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(back.mutations(), b.mutations());

        let dir = tmp_dir("node-ops");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        w.append(&b).unwrap();
        drop(w);
        let scan = read_wal(&wal_path(&dir)).unwrap();
        assert_eq!(scan.last_seq, 1);
        assert_eq!(scan.records[0].1.mutations(), b.mutations());
    }

    #[test]
    fn v1_logs_still_decode() {
        // Hand-assemble a version-1 log (edge opcodes only, as an old build
        // would have written) and check the current reader replays it.
        let dir = tmp_dir("v1-compat");
        let path = wal_path(&dir);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        for (seq, tag) in [(1u64, 0u32), (2, 10)] {
            let payload = encode_batch(&batch(tag));
            let mut checked = Vec::with_capacity(8 + payload.len());
            checked.extend_from_slice(&seq.to_le_bytes());
            checked.extend_from_slice(&payload);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&seq.to_le_bytes());
            bytes.extend_from_slice(&crc32(&checked).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.last_seq, 2);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records[1].1.mutations(), batch(10).mutations());
        // And the writer continues appending to it in place.
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(w.append(&batch(20)).unwrap(), 3);
        drop(w);
        assert_eq!(read_wal(&path).unwrap().last_seq, 3);

        // A version from the future is still rejected.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(read_wal(&path), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn append_reopen_replay() {
        let dir = tmp_dir("reopen");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(w.append(&batch(0)).unwrap(), 1);
        assert_eq!(w.append(&batch(10)).unwrap(), 2);
        drop(w);
        // Reopen continues the sequence.
        let mut w = WalWriter::open(&dir, FsyncPolicy::EveryN(8)).unwrap();
        assert_eq!(w.last_seq(), 2);
        assert_eq!(w.append(&batch(20)).unwrap(), 3);
        w.sync().unwrap();
        drop(w);
        let scan = read_wal(&wal_path(&dir)).unwrap();
        assert_eq!(scan.last_seq, 3);
        assert_eq!(scan.torn_bytes, 0);
        let seqs: Vec<u64> = scan.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(scan.records[1].1.mutations(), batch(10).mutations());
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Never).unwrap();
        for i in 0..4 {
            w.append(&batch(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let path = wal_path(&dir);
        // Chop the final record mid-payload: a torn write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.last_seq, 3, "final record dropped as torn");
        assert!(scan.torn_bytes > 0);
        // Reopening truncates and keeps appending from seq 4.
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(w.truncated_tail() > 0);
        assert_eq!(w.append(&batch(99)).unwrap(), 4);
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.last_seq, 4);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records[3].1.mutations(), batch(99).mutations());
    }

    #[test]
    fn corrupted_torn_checksum_on_final_record_is_torn_not_error() {
        let dir = tmp_dir("tail-crc");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        w.append(&batch(0)).unwrap();
        w.append(&batch(1)).unwrap();
        drop(w);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the final payload byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.last_seq, 1, "damaged final record treated as torn");
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn mid_file_corruption_is_rejected() {
        let dir = tmp_dir("midfile");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        for i in 0..3 {
            w.append(&batch(i)).unwrap();
        }
        drop(w);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit of the FIRST record (well before the tail).
        bytes[HEADER_LEN as usize + FRAME_HEADER_LEN + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_wal(&path).unwrap_err();
        match err {
            PersistError::Corrupt { offset, .. } => assert_eq!(offset, HEADER_LEN),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn non_wal_file_is_rejected() {
        let dir = tmp_dir("magic");
        let path = wal_path(&dir);
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(read_wal(&path), Err(PersistError::Corrupt { .. })));
    }
}
