//! # uninet-persist — the durability plane
//!
//! A production embedding service cannot rebuild graph, sampler and
//! embedding state from scratch on every boot. This crate gives the engine a
//! durable footprint on disk, built from two halves:
//!
//! * **[`wal`]** — a write-ahead log of [`uninet_dyngraph::UpdateBatch`]es.
//!   Every batch the streaming pipeline applies is first appended as a
//!   length-prefixed, CRC-32-checksummed record, under a configurable
//!   [`FsyncPolicy`].
//! * **[`snapshot`]** — periodic binary snapshots of the full state: the
//!   compacted CSR graph, the last published embedding matrix, and the
//!   sampler configuration (strategy + seed; M-H chains are rebuilt
//!   deterministically on recovery).
//!
//! **[`recovery`]** ties them together: load the newest snapshot that
//! validates, truncate any torn WAL tail, replay the WAL suffix through the
//! same [`uninet_dyngraph::DynamicGraph`] apply semantics the live path
//! uses, and hand back a [`RecoveredState`]. The crate's property tests pin
//! the contract down: recovering after a crash at an arbitrary byte offset
//! yields exactly the state of an uninterrupted run over the durable prefix
//! (`restart == no-restart`).
//!
//! Everything on disk uses the hand-rolled little-endian codec in [`codec`]
//! — the workspace is vendored offline, so there is no serde.

use std::fmt;
use std::path::PathBuf;

pub mod codec;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use recovery::{recover, RecoveredState};
pub use snapshot::{
    latest_valid_snapshot, list_snapshots, read_snapshot, write_snapshot, LoadedSnapshot,
    SamplerState, Snapshot,
};
pub use wal::{read_wal, wal_path, FsyncPolicy, WalScan, WalWriter, WAL_FILE};

/// Errors of the durability plane.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation on a WAL or snapshot file failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// A file's contents are damaged beyond what a torn write explains.
    Corrupt {
        /// Damaged file.
        path: PathBuf,
        /// Byte offset where validation failed.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The directory holds no valid snapshot to recover from.
    NoState {
        /// Directory that was searched.
        dir: PathBuf,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            PersistError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt persist file {} at byte {offset}: {reason}",
                path.display()
            ),
            PersistError::NoState { dir } => write!(
                f,
                "no valid snapshot found in {} — nothing to recover",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
