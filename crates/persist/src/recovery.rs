//! Crash recovery: newest valid snapshot + WAL suffix replay.
//!
//! Recovery is the inverse of the durable write path. It loads the newest
//! snapshot whose checksum validates (falling back to older ones), truncates
//! any torn tail off the WAL, then replays exactly the records with
//! `seq > snapshot.wal_seq` through a [`DynamicGraph`] overlay — the same
//! apply semantics the live ingest path uses — and compacts the result.
//!
//! The recovered state therefore equals the state a process that never
//! crashed would have reached after applying the same durable prefix: the
//! property the `restart == no-restart` proptest pins down.

use std::path::{Path, PathBuf};

use uninet_dyngraph::DynamicGraph;
use uninet_embedding::Embeddings;
use uninet_graph::Graph;

use crate::snapshot::{latest_valid_snapshot, SamplerState};
use crate::wal::{read_wal, wal_path};
use crate::PersistError;

/// Everything recovered from a WAL directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// The graph after replaying the durable WAL suffix onto the snapshot.
    pub graph: Graph,
    /// The last published embedding matrix, when the snapshot carried one.
    pub embeddings: Option<Embeddings>,
    /// Open-world live mask over the recovered graph's rows (`None` = fully
    /// live). Reflects the snapshot's mask plus every node op replayed from
    /// the WAL suffix, so retired ids stay unreachable across a restart.
    pub live: Option<Vec<bool>>,
    /// Embedding-store epoch at the time of the recovered snapshot.
    pub epoch: u64,
    /// Sampler strategy + seed to rebuild chains deterministically.
    pub sampler: SamplerState,
    /// Whether updates were applied symmetrically (undirected).
    pub symmetric: bool,
    /// Sequence number of the last durable WAL record folded into `graph`.
    pub last_wal_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Individual mutations replayed.
    pub replayed_mutations: usize,
    /// Bytes of torn WAL tail truncated during recovery.
    pub truncated_tail_bytes: u64,
    /// Snapshot file the recovery started from.
    pub snapshot_path: PathBuf,
    /// Newer snapshot files skipped because they failed validation.
    pub snapshots_skipped: usize,
}

/// Recovers engine state from a WAL directory.
///
/// Fails with [`PersistError::NoState`] when the directory holds no valid
/// snapshot (the durable write path always writes an initial snapshot before
/// the first WAL append, so a bare WAL is unrecoverable by construction) and
/// with [`PersistError::Corrupt`] when the WAL is damaged anywhere other
/// than a torn tail.
pub fn recover(dir: &Path) -> Result<RecoveredState, PersistError> {
    let loaded = latest_valid_snapshot(dir)?.ok_or_else(|| PersistError::NoState {
        dir: dir.to_path_buf(),
    })?;
    let snap = loaded.snapshot;

    let path = wal_path(dir);
    let scan = read_wal(&path)?;
    if scan.torn_bytes > 0 {
        // Truncate the torn tail so subsequent appends continue cleanly.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::Io {
                path: path.clone(),
                source: e,
            })?;
        f.set_len(scan.valid_len).map_err(|e| PersistError::Io {
            path: path.clone(),
            source: e,
        })?;
        let _ = f.sync_all();
    }

    let mut dg = match snap.live {
        Some(live) => DynamicGraph::with_universe(snap.graph, snap.symmetric, live),
        None => DynamicGraph::new(snap.graph, snap.symmetric),
    };
    let mut replayed_batches = 0;
    let mut replayed_mutations = 0;
    let mut last_wal_seq = snap.wal_seq;
    for (seq, batch) in &scan.records {
        if *seq <= snap.wal_seq {
            continue;
        }
        for m in batch.mutations() {
            dg.apply(*m);
        }
        replayed_batches += 1;
        replayed_mutations += batch.len();
        last_wal_seq = *seq;
    }
    // Records the snapshot already covers may legitimately be missing from a
    // rotated log, but a gap *after* the snapshot means lost acknowledged
    // writes.
    if scan.last_seq > snap.wal_seq
        && scan
            .records
            .first()
            .is_some_and(|(s, _)| *s > snap.wal_seq + 1)
    {
        return Err(PersistError::Corrupt {
            path,
            offset: 0,
            reason: format!(
                "WAL starts at seq {} but snapshot covers only up to {}",
                scan.records.first().map(|(s, _)| *s).unwrap_or(0),
                snap.wal_seq
            ),
        });
    }

    // An all-live mask is canonicalized to `None` so closed-world recoveries
    // keep their original shape.
    let live_mask = dg.live_mask().to_vec();
    let live = live_mask.iter().any(|&l| !l).then_some(live_mask);

    Ok(RecoveredState {
        graph: dg.into_base(),
        embeddings: snap.embeddings,
        live,
        epoch: snap.epoch,
        sampler: snap.sampler,
        symmetric: snap.symmetric,
        last_wal_seq,
        replayed_batches,
        replayed_mutations,
        truncated_tail_bytes: scan.torn_bytes,
        snapshot_path: loaded.path,
        snapshots_skipped: loaded.skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, Snapshot};
    use crate::wal::{FsyncPolicy, WalWriter};
    use uninet_dyngraph::UpdateBatch;
    use uninet_graph::GraphBuilder;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uninet-rec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(5);
        b.symmetric(true);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.build()
    }

    #[test]
    fn empty_dir_is_no_state() {
        let dir = tmp_dir("nostate");
        assert!(matches!(recover(&dir), Err(PersistError::NoState { .. })));
    }

    #[test]
    fn snapshot_plus_wal_suffix_replays() {
        let dir = tmp_dir("replay");
        let graph = base_graph();
        write_snapshot(
            &dir,
            &Snapshot {
                wal_seq: 0,
                epoch: 5,
                symmetric: true,
                sampler: SamplerState::default(),
                graph: graph.clone(),
                embeddings: None,
                live: None,
            },
        )
        .unwrap();
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        let mut b = UpdateBatch::new();
        b.add_edge(3, 4, 2.0);
        w.append(&b).unwrap();
        let mut b2 = UpdateBatch::new();
        b2.remove_edge(0, 1);
        w.append(&b2).unwrap();
        drop(w);

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.epoch, 5);
        assert_eq!(rec.last_wal_seq, 2);
        assert_eq!(rec.replayed_batches, 2);
        assert_eq!(rec.replayed_mutations, 2);
        assert!(rec.graph.has_edge(3, 4), "replayed insert");
        assert!(rec.graph.has_edge(4, 3), "symmetric mirror");
        assert!(!rec.graph.has_edge(0, 1), "replayed removal");
        assert!(!rec.graph.has_edge(1, 0), "symmetric removal");
    }

    #[test]
    fn newer_snapshot_short_circuits_replay() {
        let dir = tmp_dir("newer");
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        let mut b = UpdateBatch::new();
        b.add_edge(0, 4, 9.0);
        w.append(&b).unwrap();
        drop(w);
        // Snapshot taken AFTER that record: replay must skip it.
        let mut dg = DynamicGraph::new(base_graph(), true);
        dg.apply(uninet_dyngraph::GraphMutation::AddEdge {
            src: 0,
            dst: 4,
            weight: 9.0,
        });
        write_snapshot(
            &dir,
            &Snapshot {
                wal_seq: 1,
                epoch: 2,
                symmetric: true,
                sampler: SamplerState::default(),
                graph: dg.into_base(),
                embeddings: None,
                live: None,
            },
        )
        .unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.replayed_batches, 0);
        assert_eq!(rec.last_wal_seq, 1);
        assert!(rec.graph.has_edge(0, 4));
    }

    #[test]
    fn node_ops_replay_into_the_live_mask() {
        let dir = tmp_dir("churn");
        write_snapshot(
            &dir,
            &Snapshot {
                wal_seq: 0,
                epoch: 1,
                symmetric: true,
                sampler: SamplerState::default(),
                graph: base_graph(),
                embeddings: None,
                live: None,
            },
        )
        .unwrap();
        let mut w = WalWriter::open(&dir, FsyncPolicy::Always).unwrap();
        // Node 5 arrives and connects; node 1 retires.
        let mut b = UpdateBatch::new();
        b.add_node(5);
        b.add_edge(5, 0, 2.0);
        b.remove_node(1);
        w.append(&b).unwrap();
        drop(w);

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.graph.num_nodes(), 6, "universe grew to include 5");
        assert!(rec.graph.has_edge(5, 0) && rec.graph.has_edge(0, 5));
        assert_eq!(rec.graph.degree(1), 0, "retired node lost its edges");
        let live = rec.live.expect("churn produces a live mask");
        assert_eq!(live, vec![true, false, true, true, true, true]);

        // Recovering a dir whose snapshot carries the mask round-trips it.
        write_snapshot(
            &dir,
            &Snapshot {
                wal_seq: 1,
                epoch: 2,
                symmetric: true,
                sampler: SamplerState::default(),
                graph: rec.graph.clone(),
                embeddings: None,
                live: Some(live.clone()),
            },
        )
        .unwrap();
        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.live, Some(live));
        assert_eq!(rec2.replayed_batches, 0);
    }
}
