//! Hand-rolled little-endian binary codec shared by the WAL and snapshots.
//!
//! The workspace is vendored offline, so there is no serde: every on-disk
//! structure is encoded field by field through [`Enc`] and decoded through the
//! bounds-checked [`Dec`] cursor. Decoding never panics — a short or mangled
//! buffer surfaces as [`DecodeError`], which callers map to
//! [`crate::PersistError::Corrupt`] with file/offset context.

use std::fmt;

/// A decode failure: the cursor ran off the end of the buffer or hit a value
/// that cannot be interpreted (bad enum tag, non-UTF-8 string, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset (within the decoded buffer) where decoding failed.
    pub offset: usize,
    /// Human-readable description of what was expected.
    pub reason: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` widened to `u64` (on-disk format is 64-bit).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian cursor over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (guards against trailing junk).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing bytes after record", self.remaining())))
        }
    }

    fn err(&self, reason: impl Into<String>) -> DecodeError {
        DecodeError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an IEEE-754 `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting overflow.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("length {v} does not fit in usize")))
    }

    /// Reads a `usize` length prefix and rejects values above `cap` — a guard
    /// against allocating gigabytes off four corrupted bytes.
    pub fn bounded_len(&mut self, cap: usize, what: &str) -> Result<usize, DecodeError> {
        let v = self.usize()?;
        if v > cap {
            return Err(self.err(format!("{what} length {v} exceeds sanity cap {cap}")));
        }
        Ok(v)
    }

    /// Reads a length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let b = self.take(n, "string body")?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError {
            offset: start,
            reason: "string is not valid UTF-8".to_string(),
        })
    }
}

/// CRC-32 (IEEE/zlib polynomial, reflected) over `bytes`.
///
/// Table-driven; the 1 KiB table is built once on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u16(0x1234);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 7);
        e.f32(-0.0);
        e.f32(f32::NAN);
        e.usize(42);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(d.f32().unwrap().is_nan());
        assert_eq!(d.usize().unwrap(), 42);
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_read_is_an_error_not_a_panic() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert!(d.u16().is_ok());
        let err = d.u32().unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(err.reason.contains("truncated"), "{}", err.reason);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Enc::new();
        e.u32(7);
        e.u8(9);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u32().unwrap(), 7);
        assert!(d.finish().is_err());
    }

    #[test]
    fn bounded_len_guards_absurd_allocations() {
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.bounded_len(1 << 20, "nodes").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = b"write-ahead log record payload".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x20;
        assert_ne!(crc32(&data), clean);
    }
}
