//! Binary state snapshots: CSR graph + embedding matrix + sampler state.
//!
//! # File layout
//!
//! ```text
//! snapshot := "UNSP" u32:version u64:body_len u32:crc32(body) body
//! body     := u64:wal_seq u64:epoch u8:flags sampler graph [embeddings] [live]
//! flags    := bit0 = graph is symmetric, bit1 = embeddings present,
//!             bit2 = live mask present
//! sampler  := u8:kind [u8:init u64:param] u64:seed
//! graph    := u64:n  (n+1)×u64:offsets  e×u32:neighbors  e×f32:weights
//!             u64:nt_len nt_len×u16:node_types  u64:et_len et_len×u16:edge_types
//!             u16:num_node_types u16:num_edge_types
//!             u16:#node_names names*  u16:#edge_names names*
//! embeddings := u64:dim u64:nodes dim·nodes×f32
//! live     := u64:n n×u8(0=retired 1=live)
//! ```
//!
//! Version history: v1 had no live-mask section (flags bit2 was never set);
//! v2 added it for open-world sessions. Readers accept both — a v1 snapshot
//! decodes with `live = None`, meaning the whole universe is live.
//!
//! Snapshot files are named `snap-<wal_seq, 20 digits>.snap` so a plain
//! lexicographic sort orders them by WAL position, and are written to a
//! temporary name then renamed, so a crash mid-write never leaves a
//! plausible-looking partial snapshot under the real name. Recovery walks the
//! snapshots newest-first and uses the first one whose checksum validates.
//!
//! Sampler state is persisted as *configuration* (strategy + RNG seed), not
//! materialized M-H chains: chains are rebuilt deterministically from
//! graph + seed on recovery, which is both smaller and immune to chain-layout
//! changes across versions.

use std::io::Write;
use std::path::{Path, PathBuf};

use uninet_embedding::Embeddings;
use uninet_graph::{Graph, TypeRegistry};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};

use crate::codec::{crc32, Dec, DecodeError, Enc};
use crate::PersistError;

const SNAP_MAGIC: [u8; 4] = *b"UNSP";
const SNAP_VERSION: u32 = 2;
/// Oldest on-disk version [`read_snapshot`] still decodes.
const SNAP_MIN_VERSION: u32 = 1;
/// Sanity caps applied before allocating from length prefixes.
const MAX_NODES: usize = 1 << 31;
const MAX_EDGES: usize = 1 << 33;
const MAX_EMBED_FLOATS: usize = 1 << 33;

/// Persisted sampler state: enough to rebuild chains deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerState {
    /// Edge-sampling strategy in use.
    pub kind: EdgeSamplerKind,
    /// RNG seed the walk/maintenance plane was configured with.
    pub seed: u64,
}

impl Default for SamplerState {
    fn default() -> Self {
        SamplerState {
            kind: EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
            seed: 0,
        }
    }
}

/// One decoded snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// WAL sequence number this snapshot is consistent with: every record
    /// with `seq <= wal_seq` is already folded into the graph.
    pub wal_seq: u64,
    /// Embedding-store epoch at snapshot time.
    pub epoch: u64,
    /// Whether the dynamic overlay mirrored mutations (undirected updates).
    pub symmetric: bool,
    /// Sampler strategy + seed for deterministic chain rebuild.
    pub sampler: SamplerState,
    /// The compacted CSR graph.
    pub graph: Graph,
    /// The embedding matrix, when one had been published.
    pub embeddings: Option<Embeddings>,
    /// Open-world live mask over the graph's rows (`None` = fully live, the
    /// only state closed-world sessions and v1 snapshots produce). Retired
    /// ids keep their rows; the mask is what excludes them from serving
    /// after recovery.
    pub live: Option<Vec<bool>>,
}

/// A snapshot successfully loaded from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Path of the file that validated.
    pub path: PathBuf,
    /// The decoded snapshot.
    pub snapshot: Snapshot,
    /// Number of newer snapshot files skipped because they failed to
    /// validate (torn or corrupted).
    pub skipped: usize,
}

fn io_err(path: &Path, source: std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason: reason.into(),
    }
}

/// File name for a snapshot taken at `wal_seq`.
pub fn snapshot_file_name(wal_seq: u64) -> String {
    format!("snap-{wal_seq:020}.snap")
}

fn encode_sampler(e: &mut Enc, s: &SamplerState) {
    match s.kind {
        EdgeSamplerKind::Alias => e.u8(0),
        EdgeSamplerKind::Direct => e.u8(1),
        EdgeSamplerKind::Rejection => e.u8(2),
        EdgeSamplerKind::KnightKing => e.u8(3),
        EdgeSamplerKind::MemoryAware => e.u8(4),
        EdgeSamplerKind::MetropolisHastings(init) => {
            e.u8(5);
            match init {
                InitStrategy::Random => {
                    e.u8(0);
                    e.u64(0);
                }
                InitStrategy::HighWeight { probe } => {
                    e.u8(1);
                    e.u64(probe as u64);
                }
                InitStrategy::BurnIn { iterations } => {
                    e.u8(2);
                    e.u64(iterations as u64);
                }
            }
        }
    }
    e.u64(s.seed);
}

fn decode_sampler(d: &mut Dec) -> Result<SamplerState, DecodeError> {
    let kind = match d.u8()? {
        0 => EdgeSamplerKind::Alias,
        1 => EdgeSamplerKind::Direct,
        2 => EdgeSamplerKind::Rejection,
        3 => EdgeSamplerKind::KnightKing,
        4 => EdgeSamplerKind::MemoryAware,
        5 => {
            let init_tag = d.u8()?;
            let param = d.u64()? as usize;
            let init = match init_tag {
                0 => InitStrategy::Random,
                1 => InitStrategy::HighWeight { probe: param },
                2 => InitStrategy::BurnIn { iterations: param },
                other => {
                    return Err(DecodeError {
                        offset: d.offset(),
                        reason: format!("unknown init strategy tag {other}"),
                    })
                }
            };
            EdgeSamplerKind::MetropolisHastings(init)
        }
        other => {
            return Err(DecodeError {
                offset: d.offset(),
                reason: format!("unknown sampler kind tag {other}"),
            })
        }
    };
    Ok(SamplerState {
        kind,
        seed: d.u64()?,
    })
}

fn encode_graph(e: &mut Enc, g: &Graph) {
    let n = g.num_nodes();
    e.usize(n);
    for &off in g.offsets() {
        e.usize(off);
    }
    for v in 0..n as u32 {
        for &nb in g.neighbors(v) {
            e.u32(nb);
        }
    }
    for v in 0..n as u32 {
        for &w in g.weights(v) {
            e.f32(w);
        }
    }
    e.usize(g.node_types().len());
    for &t in g.node_types() {
        e.u16(t);
    }
    e.usize(g.edge_types().len());
    for &t in g.edge_types() {
        e.u16(t);
    }
    e.u16(g.num_node_types());
    e.u16(g.num_edge_types());
    let reg = g.type_registry();
    e.u16(reg.num_node_type_names() as u16);
    for id in 0..reg.num_node_type_names() as u16 {
        e.str(reg.node_type_name(id).unwrap_or(""));
    }
    e.u16(reg.num_edge_type_names() as u16);
    for id in 0..reg.num_edge_type_names() as u16 {
        e.str(reg.edge_type_name(id).unwrap_or(""));
    }
}

fn decode_graph(d: &mut Dec) -> Result<Graph, DecodeError> {
    let n = d.bounded_len(MAX_NODES, "nodes")?;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(d.usize()?);
    }
    let num_edges = *offsets.last().unwrap_or(&0);
    if num_edges > MAX_EDGES {
        return Err(DecodeError {
            offset: d.offset(),
            reason: format!("edge count {num_edges} exceeds sanity cap"),
        });
    }
    // Validate monotonicity before trusting the edge count: from_csr_parts
    // asserts (panics) on inconsistent arrays, so reject here instead.
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(DecodeError {
                offset: d.offset(),
                reason: "offsets are not monotonically non-decreasing".to_string(),
            });
        }
    }
    let mut neighbors = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        neighbors.push(d.u32()?);
    }
    let mut weights = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        weights.push(d.f32()?);
    }
    let nt_len = d.bounded_len(MAX_NODES, "node types")?;
    if nt_len != 0 && nt_len != n {
        return Err(DecodeError {
            offset: d.offset(),
            reason: format!("node_types length {nt_len} matches neither 0 nor {n}"),
        });
    }
    let mut node_types = Vec::with_capacity(nt_len);
    for _ in 0..nt_len {
        node_types.push(d.u16()?);
    }
    let et_len = d.bounded_len(MAX_EDGES, "edge types")?;
    if et_len != 0 && et_len != num_edges {
        return Err(DecodeError {
            offset: d.offset(),
            reason: format!("edge_types length {et_len} matches neither 0 nor {num_edges}"),
        });
    }
    let mut edge_types = Vec::with_capacity(et_len);
    for _ in 0..et_len {
        edge_types.push(d.u16()?);
    }
    let num_node_types = d.u16()?;
    let num_edge_types = d.u16()?;
    let mut registry = TypeRegistry::new();
    let node_names = d.u16()?;
    for _ in 0..node_names {
        let name = d.str()?;
        registry.node_type_id(&name);
    }
    let edge_names = d.u16()?;
    for _ in 0..edge_names {
        let name = d.str()?;
        registry.edge_type_id(&name);
    }
    Ok(Graph::from_csr_parts(
        offsets,
        neighbors,
        weights,
        node_types,
        edge_types,
        num_node_types,
        num_edge_types,
        registry,
    ))
}

fn encode_body(snap: &Snapshot) -> Vec<u8> {
    let approx = 64
        + snap.graph.num_nodes() * 8
        + snap.graph.num_edges() * 8
        + snap
            .embeddings
            .as_ref()
            .map_or(0, |e| e.num_nodes() * e.dim() * 4);
    let mut e = Enc::with_capacity(approx);
    e.u64(snap.wal_seq);
    e.u64(snap.epoch);
    let mut flags = 0u8;
    if snap.symmetric {
        flags |= 1;
    }
    if snap.embeddings.is_some() {
        flags |= 2;
    }
    if snap.live.is_some() {
        flags |= 4;
    }
    e.u8(flags);
    encode_sampler(&mut e, &snap.sampler);
    encode_graph(&mut e, &snap.graph);
    if let Some(emb) = &snap.embeddings {
        e.usize(emb.dim());
        e.usize(emb.num_nodes());
        for &x in emb.as_flat() {
            e.f32(x);
        }
    }
    if let Some(live) = &snap.live {
        assert_eq!(
            live.len(),
            snap.graph.num_nodes(),
            "live mask length must equal the graph's node count"
        );
        e.usize(live.len());
        for &l in live {
            e.u8(l as u8);
        }
    }
    e.into_bytes()
}

fn decode_body(body: &[u8]) -> Result<Snapshot, DecodeError> {
    let mut d = Dec::new(body);
    let wal_seq = d.u64()?;
    let epoch = d.u64()?;
    let flags = d.u8()?;
    let sampler = decode_sampler(&mut d)?;
    let graph = decode_graph(&mut d)?;
    let embeddings = if flags & 2 != 0 {
        let dim = d.bounded_len(1 << 20, "embedding dim")?;
        let nodes = d.bounded_len(MAX_NODES, "embedding rows")?;
        let total = dim.checked_mul(nodes).ok_or_else(|| DecodeError {
            offset: d.offset(),
            reason: "embedding size overflows".to_string(),
        })?;
        if total > MAX_EMBED_FLOATS {
            return Err(DecodeError {
                offset: d.offset(),
                reason: format!("embedding size {total} exceeds sanity cap"),
            });
        }
        let mut flat = Vec::with_capacity(total);
        for _ in 0..total {
            flat.push(d.f32()?);
        }
        Some(Embeddings::from_flat(dim, flat))
    } else {
        None
    };
    let live = if flags & 4 != 0 {
        let n = d.bounded_len(MAX_NODES, "live mask")?;
        if n != graph.num_nodes() {
            return Err(DecodeError {
                offset: d.offset(),
                reason: format!(
                    "live mask length {n} does not match node count {}",
                    graph.num_nodes()
                ),
            });
        }
        let mut mask = Vec::with_capacity(n);
        for _ in 0..n {
            mask.push(d.u8()? != 0);
        }
        Some(mask)
    } else {
        None
    };
    d.finish()?;
    Ok(Snapshot {
        wal_seq,
        epoch,
        symmetric: flags & 1 != 0,
        sampler,
        graph,
        embeddings,
        live,
    })
}

/// Writes `snap` into `dir`, returning the final path.
///
/// The file is staged under a temporary name and renamed into place, so
/// readers never observe a partially written snapshot under a valid name.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> Result<PathBuf, PersistError> {
    let body = encode_body(snap);
    let mut out = Vec::with_capacity(body.len() + 20);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);

    let final_path = dir.join(snapshot_file_name(snap.wal_seq));
    let tmp_path = dir.join(format!(".{}.tmp", snapshot_file_name(snap.wal_seq)));
    let mut f = std::fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
    f.write_all(&out).map_err(|e| io_err(&tmp_path, e))?;
    f.sync_all().map_err(|e| io_err(&tmp_path, e))?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 20 {
        return Err(corrupt(path, 0, "file shorter than the snapshot header"));
    }
    if bytes[..4] != SNAP_MAGIC {
        return Err(corrupt(path, 0, "bad magic (not a UniNet snapshot)"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if !(SNAP_MIN_VERSION..=SNAP_VERSION).contains(&version) {
        return Err(corrupt(
            path,
            4,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let body_len = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]) as usize;
    let crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if bytes.len() != 20 + body_len {
        return Err(corrupt(
            path,
            8,
            format!(
                "body length {} does not match file size {}",
                body_len,
                bytes.len() - 20
            ),
        ));
    }
    let body = &bytes[20..];
    if crc32(body) != crc {
        return Err(corrupt(path, 16, "snapshot body fails its checksum"));
    }
    let snap = decode_body(body).map_err(|e| corrupt(path, 20 + e.offset as u64, e.reason))?;
    snap.graph
        .validate()
        .map_err(|e| corrupt(path, 20, format!("decoded graph fails validation: {e}")))?;
    Ok(snap)
}

/// All snapshot files in `dir`, newest (highest `wal_seq`) first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("snap-") && n.ends_with(".snap"))
                .unwrap_or(false)
        })
        .collect();
    // `snap-<zero-padded seq>.snap` sorts lexicographically by WAL position.
    paths.sort();
    paths.reverse();
    Ok(paths)
}

/// Loads the newest snapshot in `dir` that validates, skipping damaged ones.
pub fn latest_valid_snapshot(dir: &Path) -> Result<Option<LoadedSnapshot>, PersistError> {
    let mut skipped = 0;
    for path in list_snapshots(dir)? {
        match read_snapshot(&path) {
            Ok(snapshot) => {
                return Ok(Some(LoadedSnapshot {
                    path,
                    snapshot,
                    skipped,
                }))
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uninet-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(4);
        b.add_edge(0, 1, 1.5);
        b.add_edge(1, 0, 1.5);
        b.add_edge(1, 2, 0.25);
        b.add_edge(2, 3, 4.0);
        b.build()
    }

    fn sample_snapshot(wal_seq: u64) -> Snapshot {
        Snapshot {
            wal_seq,
            epoch: 3,
            symmetric: true,
            sampler: SamplerState {
                kind: EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 17 }),
                seed: 0xFEED,
            },
            graph: sample_graph(),
            embeddings: Some(Embeddings::from_flat(
                2,
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            )),
            live: None,
        }
    }

    fn assert_graph_eq(a: &Graph, b: &Graph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.offsets(), b.offsets());
        for v in 0..a.num_nodes() as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
            assert_eq!(a.weights(v), b.weights(v));
        }
        assert_eq!(a.node_types(), b.node_types());
        assert_eq!(a.edge_types(), b.edge_types());
        assert_eq!(a.num_node_types(), b.num_node_types());
        assert_eq!(a.num_edge_types(), b.num_edge_types());
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("roundtrip");
        let snap = sample_snapshot(42);
        let path = write_snapshot(&dir, &snap).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().contains("42"));
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.wal_seq, 42);
        assert_eq!(back.epoch, 3);
        assert!(back.symmetric);
        assert_eq!(back.sampler, snap.sampler);
        assert_graph_eq(&back.graph, &snap.graph);
        let emb = back.embeddings.unwrap();
        assert_eq!(emb.dim(), 2);
        assert_eq!(emb.as_flat(), snap.embeddings.as_ref().unwrap().as_flat());
    }

    #[test]
    fn snapshot_without_embeddings_round_trips() {
        let dir = tmp_dir("noemb");
        let mut snap = sample_snapshot(7);
        snap.embeddings = None;
        snap.symmetric = false;
        let path = write_snapshot(&dir, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert!(back.embeddings.is_none());
        assert!(!back.symmetric);
    }

    #[test]
    fn heterogeneous_registry_round_trips() {
        let dir = tmp_dir("hetero");
        let mut b = GraphBuilder::new();
        b.set_num_nodes(3);
        let user = b.registry_mut().node_type_id("user");
        let item = b.registry_mut().node_type_id("item");
        let buys = b.registry_mut().edge_type_id("buys");
        let bought_by = b.registry_mut().edge_type_id("bought-by");
        b.set_node_type(0, user);
        b.set_node_type(1, item);
        b.set_node_type(2, user);
        b.add_typed_edge(0, 1, 1.0, buys);
        b.add_typed_edge(1, 2, 2.0, bought_by);
        let graph = b.build();
        let snap = Snapshot {
            wal_seq: 1,
            epoch: 0,
            symmetric: false,
            sampler: SamplerState::default(),
            graph,
            embeddings: None,
            live: None,
        };
        let path = write_snapshot(&dir, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_graph_eq(&back.graph, &snap.graph);
        let reg = back.graph.type_registry();
        assert_eq!(
            reg.node_type_name(0),
            snap.graph.type_registry().node_type_name(0)
        );
        assert_eq!(
            reg.edge_type_name(0),
            snap.graph.type_registry().edge_type_name(0)
        );
    }

    #[test]
    fn live_mask_round_trips() {
        let dir = tmp_dir("live");
        let mut snap = sample_snapshot(9);
        snap.live = Some(vec![true, false, true, true]);
        let path = write_snapshot(&dir, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.live, snap.live);
        assert_eq!(back.wal_seq, 9);
        assert!(back.embeddings.is_some());

        // A mask whose length disagrees with the graph is rejected on read.
        let mut bad = sample_snapshot(10);
        bad.live = Some(vec![true; 4]);
        let path = write_snapshot(&dir, &bad).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Shrink the mask to 3 entries (last 12 bytes are u64:len + 4 mask
        // bytes): drop the final mask byte, rewrite len, re-checksum.
        bytes.pop();
        let len_pos = bytes.len() - 11;
        bytes[len_pos..len_pos + 8].copy_from_slice(&3u64.to_le_bytes());
        let body_len = bytes.len() - 20;
        bytes[8..16].copy_from_slice(&(body_len as u64).to_le_bytes());
        let crc = crc32(&bytes[20..]);
        bytes[16..20].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn v1_snapshots_still_decode() {
        // A v1 file is byte-identical to a v2 file without the live section;
        // only the header version differs. Old builds never set flag bit2.
        let dir = tmp_dir("v1-compat");
        let snap = sample_snapshot(5);
        let path = write_snapshot(&dir, &snap).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.live, None, "v1 snapshots are fully live");
        assert_graph_eq(&back.graph, &snap.graph);

        // A version from the future is still rejected.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_snapshot_is_rejected_and_skipped() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample_snapshot(1)).unwrap();
        let newest = write_snapshot(&dir, &sample_snapshot(2)).unwrap();
        // Flip a byte in the newest snapshot's body.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&newest),
            Err(PersistError::Corrupt { .. })
        ));
        // latest_valid_snapshot falls back to the older valid one.
        let loaded = latest_valid_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.snapshot.wal_seq, 1);
        assert_eq!(loaded.skipped, 1);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tmp_dir("empty");
        assert!(latest_valid_snapshot(&dir).unwrap().is_none());
        assert!(list_snapshots(&dir).unwrap().is_empty());
    }
}
