//! Shared harness utilities for the experiment binaries that regenerate the
//! tables and figures of the UniNet paper.
//!
//! Every experiment binary (`exp_table2`, `exp_fig1`, …) follows the same
//! pattern: build the synthetic stand-in datasets at a configurable scale, run
//! the sweep, and print (plus write to `results/`) a markdown table whose rows
//! mirror the corresponding artifact in the paper.
//!
//! Scale is controlled by two environment variables so the same binaries serve
//! both smoke tests and longer runs:
//!
//! * `UNINET_SCALE` — multiplier on dataset sizes (default 1.0 = the harness
//!   defaults, which are laptop-sized, *not* the paper's billion-edge runs),
//! * `UNINET_QUICK` — when set to `1`, cuts walk counts/lengths for CI-speed
//!   smoke runs.
//!
//! Besides the scale knobs, the crate provides the synthetic dataset registry
//! (stand-ins for the paper's datasets at any scale) and the [`Json`] emitter
//! behind the machine-readable `results/BENCH_*.json` trend files.
//!
//! ```
//! use uninet_bench::{HarnessConfig, Json};
//!
//! let cfg = HarnessConfig::from_env();
//! assert!(cfg.scale > 0.0);
//! let blob = Json::Obj(vec![("answer", Json::Int(42))]);
//! assert_eq!(blob.render(), "{\"answer\":42}");
//! ```

use std::path::PathBuf;

use uninet_core::Table;
use uninet_graph::generators::{
    heterogenize, planted_partition, rmat, LabeledGraph, PlantedPartitionConfig, RmatConfig,
};
use uninet_graph::Graph;

/// Harness-wide scale/quick settings.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Multiplier on the default dataset sizes.
    pub scale: f64,
    /// Reduced walk counts for smoke runs.
    pub quick: bool,
}

impl HarnessConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("UNINET_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(1.0);
        let quick = std::env::var("UNINET_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        HarnessConfig { scale, quick }
    }

    /// Number of walks per node to use (paper default 10, quick 2).
    pub fn num_walks(&self) -> usize {
        if self.quick {
            2
        } else {
            10
        }
    }

    /// Walk length to use (paper default 80, quick 20).
    pub fn walk_length(&self) -> usize {
        if self.quick {
            20
        } else {
            80
        }
    }

    /// Scales a node count.
    pub fn nodes(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(64)
    }
}

/// A named benchmark dataset (graph + display name).
pub struct BenchDataset {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// The synthetic graph.
    pub graph: Graph,
}

/// Builds a weighted R-MAT graph with roughly `nodes` nodes and the given mean
/// degree — the stand-in shape for the paper's social/web graphs.
pub fn social_graph(nodes: usize, mean_degree: f64, seed: u64) -> Graph {
    rmat(&RmatConfig {
        num_nodes: nodes,
        num_edges: ((nodes as f64 * mean_degree) / 2.0) as usize,
        weighted: true,
        seed,
        ..Default::default()
    })
}

/// Builds a heterogeneous version of [`social_graph`] with 3 node types and 4
/// edge types (the AMiner/ACM-style shape).
pub fn hetero_graph(nodes: usize, mean_degree: f64, seed: u64) -> Graph {
    heterogenize(&social_graph(nodes, mean_degree, seed), 3, 4, seed ^ 0xABCD)
}

/// The homogeneous datasets used by the small/medium efficiency experiments
/// (Table VI upper blocks), scaled by the harness config.
pub fn small_homogeneous_suite(cfg: &HarnessConfig) -> Vec<BenchDataset> {
    vec![
        BenchDataset {
            name: "BlogCatalog",
            graph: social_graph(cfg.nodes(4_000), 20.0, 1),
        },
        BenchDataset {
            name: "Flickr",
            graph: social_graph(cfg.nodes(8_000), 40.0, 2),
        },
        BenchDataset {
            name: "Amazon",
            graph: social_graph(cfg.nodes(12_000), 6.0, 3),
        },
        BenchDataset {
            name: "Reddit",
            graph: social_graph(cfg.nodes(10_000), 25.0, 4),
        },
    ]
}

/// The heterogeneous datasets (Table VI lower blocks).
pub fn small_heterogeneous_suite(cfg: &HarnessConfig) -> Vec<BenchDataset> {
    vec![
        BenchDataset {
            name: "ACM",
            graph: hetero_graph(cfg.nodes(3_000), 4.0, 5),
        },
        BenchDataset {
            name: "DBLP",
            graph: hetero_graph(cfg.nodes(6_000), 9.0, 6),
        },
        BenchDataset {
            name: "DBIS",
            graph: hetero_graph(cfg.nodes(9_000), 4.0, 7),
        },
        BenchDataset {
            name: "AMiner",
            graph: hetero_graph(cfg.nodes(12_000), 6.0, 8),
        },
    ]
}

/// The two "billion-edge" stand-ins (Table VII / Figures 6-7). At scale 1.0
/// these are tens of thousands of nodes — the largest sizes that keep the full
/// sampler comparison tractable in CI; raise `UNINET_SCALE` to grow them.
pub fn large_suite(cfg: &HarnessConfig) -> Vec<BenchDataset> {
    vec![
        BenchDataset {
            name: "Twitter(sim)",
            graph: social_graph(cfg.nodes(30_000), 35.0, 9),
        },
        BenchDataset {
            name: "Web-UK(sim)",
            graph: social_graph(cfg.nodes(50_000), 30.0, 10),
        },
    ]
}

/// Labeled datasets for the accuracy study (Figure 5).
pub fn labeled_suite(cfg: &HarnessConfig) -> Vec<(&'static str, LabeledGraph)> {
    let mk = |name: &'static str, nodes: usize, k: usize, intra: f64, inter: f64, seed: u64| {
        (
            name,
            planted_partition(&PlantedPartitionConfig {
                num_nodes: cfg.nodes(nodes),
                num_communities: k,
                intra_degree: intra,
                inter_degree: inter,
                multi_label_prob: 0.2,
                seed,
            }),
        )
    };
    vec![
        mk("BlogCatalog", 2_000, 8, 16.0, 4.0, 11),
        mk("Flickr", 4_000, 10, 24.0, 6.0, 12),
        mk("Reddit", 3_000, 6, 20.0, 4.0, 13),
        mk("AMiner", 3_000, 8, 12.0, 3.0, 14),
    ]
}

/// Directory where experiment outputs are written (`results/` at the repo root
/// or the current directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Minimal JSON value for machine-readable benchmark artifacts (the
/// workspace vendors no serde; object key order is preserved so diffs across
/// PRs stay stable).
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (rendered with enough precision for timings).
    Num(f64),
    /// An integer.
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(&'static str, Json)>),
    /// Pre-rendered JSON spliced in verbatim (e.g. a telemetry snapshot from
    /// `MetricsSnapshot::to_json()`). The caller guarantees validity.
    Raw(String),
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:.6}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(x) => out.push_str(&x.to_string()),
            Json::Raw(s) => out.push_str(s),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str((*k).to_string()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a machine-readable benchmark artifact under `results/<file>.json`.
pub fn emit_json(file: &str, value: &Json) {
    let path = results_dir().join(format!("{file}.json"));
    match std::fs::write(&path, value.render() + "\n") {
        Ok(()) => println!("written to {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Prints a table to stdout and writes it under `results/<file>.md`.
pub fn emit(table: &Table, file: &str) {
    println!("{}", table.render_markdown());
    let path = results_dir().join(format!("{file}.md"));
    if let Err(e) = table.write_markdown(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("written to {}\n", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_defaults() {
        let cfg = HarnessConfig {
            scale: 1.0,
            quick: false,
        };
        assert_eq!(cfg.num_walks(), 10);
        assert_eq!(cfg.walk_length(), 80);
        assert_eq!(cfg.nodes(1000), 1000);
        let quick = HarnessConfig {
            scale: 0.01,
            quick: true,
        };
        assert_eq!(quick.num_walks(), 2);
        assert_eq!(quick.nodes(1000), 64);
    }

    #[test]
    fn raw_json_is_spliced_verbatim() {
        let blob = Json::Obj(vec![
            ("n", Json::Int(3)),
            ("telemetry", Json::Raw("{\"a\":{\"b\":1}}".to_string())),
        ]);
        assert_eq!(blob.render(), "{\"n\":3,\"telemetry\":{\"a\":{\"b\":1}}}");
    }

    #[test]
    fn suites_generate_graphs() {
        let cfg = HarnessConfig {
            scale: 0.02,
            quick: true,
        };
        for ds in small_homogeneous_suite(&cfg) {
            assert!(ds.graph.num_nodes() >= 64, "{}", ds.name);
            assert!(ds.graph.num_edges() > 0);
        }
        for ds in small_heterogeneous_suite(&cfg) {
            assert!(ds.graph.is_heterogeneous(), "{}", ds.name);
        }
        for (_, lg) in labeled_suite(&cfg) {
            assert_eq!(lg.labels.len(), lg.graph.num_nodes());
        }
        assert_eq!(large_suite(&cfg).len(), 2);
    }
}
