//! Table VII: random-walk generation time of node2vec over the two largest
//! graphs, for every edge sampler and five (p, q) settings.
//!
//! Expected shape (paper): the alias sampler runs out of memory; rejection /
//! KnightKing are parameter-sensitive (slow when p or q is small); the
//! memory-aware sampler is memory-safe but slower; UniNet's M-H sampler is
//! fast and insensitive to (p, q). The "OOM" behaviour is reproduced here as a
//! memory-estimate guard rather than by actually exhausting RAM.

use uninet_bench::{emit, large_suite, HarnessConfig};
use uninet_core::Table;
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::manager::alias_memory_estimate;
use uninet_walker::models::Node2Vec;
use uninet_walker::{WalkEngine, WalkEngineConfig};

/// Guard used to emulate the paper's out-of-memory failures: samplers whose
/// materialized tables would exceed this budget are reported as "*".
const MEMORY_GUARD_BYTES: usize = 2 << 30; // 2 GiB

fn main() {
    let cfg = HarnessConfig::from_env();
    let pq: [(f32, f32); 5] = [(1.0, 0.25), (0.25, 1.0), (1.0, 1.0), (1.0, 4.0), (4.0, 1.0)];
    let samplers: Vec<(&str, EdgeSamplerKind)> = vec![
        ("Alias", EdgeSamplerKind::Alias),
        ("Rejection", EdgeSamplerKind::Rejection),
        ("KnightKing", EdgeSamplerKind::KnightKing),
        ("Memory-Aware", EdgeSamplerKind::MemoryAware),
        (
            "UniNet(Rand)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        (
            "UniNet(Burn)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 100 }),
        ),
        (
            "UniNet(Weight)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
        ),
    ];

    let mut table = Table::new(
        "Table VII — node2vec walk generation time (seconds; '*' = exceeds memory guard)",
        &[
            "dataset", "sampler", "(1,0.25)", "(0.25,1)", "(1,1)", "(1,4)", "(4,1)",
        ],
    );

    for ds in large_suite(&cfg) {
        println!(
            "{}: {} nodes, {} edges",
            ds.name,
            ds.graph.num_nodes(),
            ds.graph.num_edges()
        );
        for (label, kind) in &samplers {
            let mut cells = vec![ds.name.to_string(), label.to_string()];
            for &(p, q) in &pq {
                let model = Node2Vec::new(p, q);
                // Emulate the paper's OOM column for fully materialized alias tables.
                if *kind == EdgeSamplerKind::Alias
                    && alias_memory_estimate(&ds.graph, &model) > MEMORY_GUARD_BYTES
                {
                    cells.push("*".to_string());
                    continue;
                }
                let walk_cfg = WalkEngineConfig::default()
                    .with_num_walks(cfg.num_walks().min(4))
                    .with_walk_length(cfg.walk_length())
                    .with_threads(16)
                    .with_sampler(*kind);
                let (_, timing) = WalkEngine::new(walk_cfg).generate(&ds.graph, &model);
                cells.push(format!("{:.2}", (timing.init + timing.walk).as_secs_f64()));
            }
            table.add_row(&cells);
        }
    }
    emit(&table, "table7");
}
