//! Concurrent-ingestion experiment: serial vs. sharded streaming pipelines,
//! and full retrain vs. incremental embedding updates.
//!
//! 1. **Pipeline throughput** — replay the same mixed update stream through
//!    `UniNet::run_streaming` with 1 ingest thread (the serial path: batch
//!    loop, serial maintenance, serial refresh) and with N ingest threads
//!    (bounded-queue intake, vertex-range sharded application, parallel
//!    sampler maintenance and walk refresh). Reports sustained updates/s and
//!    the per-phase latency split. On a multi-core host the sharded pipeline
//!    should clear ≥2x the serial throughput; on a single hardware thread the
//!    two collapse to the same schedule.
//! 2. **Incremental vs. full retrain** — same stream, embeddings either
//!    retrained from scratch on the refreshed corpus or updated online on
//!    regenerated walks only. Compares link-prediction AUC on the final
//!    graph (expected: within noise) and the training-phase time.
//!
//! Emits `results/BENCH_streaming.json` so the perf trajectory is tracked
//! across PRs.

use std::time::Instant;

use uninet_bench::{emit, emit_json, HarnessConfig, Json};
use uninet_core::{
    EdgeSamplerKind, InitStrategy, ModelSpec, StreamingConfig, StreamingReport, Table, UniNet,
    UniNetConfig,
};
use uninet_dyngraph::GraphMutation;
use uninet_eval::{link_prediction_auc, LinkPredictionConfig};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::{Graph, NodeId};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A mixed stream (70% reweights, 20% inserts, 10% deletes) over live edges.
fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.num_nodes() as NodeId;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let deg = graph.degree(src);
        if deg == 0 {
            continue;
        }
        let dst = graph.neighbor_at(src, rng.gen_range(0..deg));
        let roll = rng.gen_range(0usize..10);
        out.push(if roll < 7 {
            GraphMutation::UpdateWeight {
                src,
                dst,
                weight: rng.gen_range(0.5f32..4.0),
            }
        } else if roll < 9 {
            GraphMutation::AddEdge {
                src,
                dst: rng.gen_range(0..n),
                weight: rng.gen_range(0.5f32..2.0),
            }
        } else {
            GraphMutation::RemoveEdge { src, dst }
        });
    }
    out
}

fn pipeline_config(cfg: &HarnessConfig, threads: usize, sampler: EdgeSamplerKind) -> UniNetConfig {
    let mut uninet = UniNetConfig::default();
    uninet.walk.num_walks = cfg.num_walks().min(4);
    uninet.walk.walk_length = cfg.walk_length().min(40);
    uninet.walk.num_threads = threads;
    uninet.walk.sampler = sampler;
    uninet.embedding.dim = 64;
    uninet.embedding.epochs = 2;
    uninet.embedding.num_threads = threads;
    uninet
}

fn report_json(sampler: &str, label: &str, report: &StreamingReport, wall: f64) -> Json {
    Json::Obj(vec![
        ("sampler", Json::Str(sampler.to_string())),
        ("pipeline", Json::Str(label.to_string())),
        ("updates_per_sec", Json::Num(report.update_throughput)),
        ("batches", Json::Int(report.batches as u64)),
        ("apply_ms", Json::Num(report.apply_time.as_secs_f64() * 1e3)),
        (
            "maintain_ms",
            Json::Num(report.maintain_time.as_secs_f64() * 1e3),
        ),
        (
            "refresh_ms",
            Json::Num(report.refresh_time.as_secs_f64() * 1e3),
        ),
        ("wall_s", Json::Num(wall)),
        (
            "walks_refreshed",
            Json::Int(report.refresh.walks_refreshed as u64),
        ),
        (
            "postings_pruned",
            Json::Int(report.refresh.postings_pruned as u64),
        ),
        (
            "chains_preserved",
            Json::Int(report.maintenance.chains_preserved as u64),
        ),
        (
            "queue_peak_depth",
            Json::Int(report.queue.peak_depth as u64),
        ),
        (
            "queue_backpressure_ms",
            Json::Num(report.queue.producer_wait.as_secs_f64() * 1e3),
        ),
        ("compactions", Json::Int(report.compactions as u64)),
    ])
}

fn auc_of(graph: &Graph, embeddings: &uninet_core::Embeddings) -> f64 {
    let edges: Vec<(u32, u32)> = graph.all_edges().map(|(u, v, _)| (u, v)).collect();
    link_prediction_auc(
        graph.num_nodes(),
        &edges,
        |u, v| graph.has_edge(u, v),
        |u, v| embeddings.cosine_similarity(u, v) as f64,
        &LinkPredictionConfig {
            num_pairs: 400,
            seed: 7,
        },
    )
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let graph = barabasi_albert(cfg.nodes(20_000), 8, true, 21);
    let stream = mixed_stream(&graph, if cfg.quick { 4_000 } else { 20_000 }, 77);
    println!(
        "ingestion experiment over BA graph: {} nodes, {} edges, {} updates, {} worker threads",
        graph.num_nodes(),
        graph.num_edges(),
        stream.len(),
        threads,
    );

    // Part 1: serial vs. sharded pipeline on the same stream, per sampler.
    // The M-H rows show that UniNet's sampler leaves (almost) nothing to
    // parallelize — reweights are O(1) with zero rebuild work — while the
    // alias rows carry the O(deg)-per-state rebuilds whose fan-out is where
    // the sharded pipeline earns its throughput on multi-core hosts.
    let mut table = Table::new(
        "Concurrent ingestion — serial vs. sharded streaming pipeline (DeepWalk)",
        &[
            "sampler",
            "pipeline",
            "updates/s (apply+maintain)",
            "updates/s (incl. refresh)",
            "apply ms",
            "maintain ms",
            "refresh ms",
            "walks refreshed",
            "queue backpressure ms",
        ],
    );
    let mut json_pipelines = Vec::new();
    let mut speedups = Vec::new();
    for (sampler_name, sampler) in [
        (
            "UniNet(M-H)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        ("Alias", EdgeSamplerKind::Alias),
    ] {
        let mut throughputs = Vec::new();
        for (label, ingest_threads) in [("serial", 1usize), ("sharded", threads)] {
            let streaming = StreamingConfig {
                batch_size: 1024,
                compaction_threshold: 2048,
                ingest_threads,
                queue_capacity: 8,
                ..Default::default()
            };
            let t = Instant::now();
            let (_, report) = UniNet::new(pipeline_config(&cfg, ingest_threads, sampler))
                .run_streaming(graph.clone(), &ModelSpec::DeepWalk, &stream, &streaming);
            let wall = t.elapsed().as_secs_f64();
            // End-to-end streaming throughput: every phase of the update path
            // (apply + maintain + refresh). Walk refresh dominates and is the
            // phase the thread fan-out accelerates on multi-core hosts.
            let stream_secs = (report.apply_time + report.maintain_time + report.refresh_time)
                .as_secs_f64()
                .max(1e-9);
            let applied = (report.weight_mutations + report.topology_mutations) as f64;
            let pipeline_throughput = applied / stream_secs;
            table.add_row(&[
                sampler_name.to_string(),
                label.to_string(),
                format!("{:.0}", report.update_throughput),
                format!("{pipeline_throughput:.0}"),
                format!("{:.2}", report.apply_time.as_secs_f64() * 1e3),
                format!("{:.2}", report.maintain_time.as_secs_f64() * 1e3),
                format!("{:.2}", report.refresh_time.as_secs_f64() * 1e3),
                format!("{}", report.refresh.walks_refreshed),
                format!("{:.2}", report.queue.producer_wait.as_secs_f64() * 1e3),
            ]);
            throughputs.push(pipeline_throughput);
            let mut json = report_json(sampler_name, label, &report, wall);
            if let Json::Obj(fields) = &mut json {
                fields.push(("pipeline_updates_per_sec", Json::Num(pipeline_throughput)));
            }
            json_pipelines.push(json);
        }
        let speedup = if throughputs[0] > 0.0 {
            throughputs[1] / throughputs[0]
        } else {
            0.0
        };
        println!("{sampler_name}: sharded/serial streaming throughput {speedup:.2}x");
        speedups.push((sampler_name, speedup));
    }
    emit(&table, "exp_ingest_pipeline");
    println!();

    // Part 2: full retrain vs. incremental training on regenerated walks.
    let mut table = Table::new(
        "Concurrent ingestion — full retrain vs. incremental embedding updates",
        &[
            "training",
            "learn time s",
            "link-pred AUC",
            "pairs trained",
            "incremental passes",
        ],
    );
    let mut json_training = Vec::new();
    let mut aucs = Vec::new();
    for (label, incremental) in [("full-retrain", false), ("incremental", true)] {
        // Coarse batches keep refresh rounds (and with them the incremental
        // training volume) low: on hub-heavy graphs every round touches a
        // large corpus fraction, so round count dominates incremental cost.
        let streaming = StreamingConfig {
            batch_size: stream.len().div_ceil(4).max(1),
            compaction_threshold: 2048,
            ingest_threads: threads,
            incremental_train: incremental,
            ..Default::default()
        };
        let (result, report) = UniNet::new(pipeline_config(
            &cfg,
            threads,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ))
        .run_streaming(graph.clone(), &ModelSpec::DeepWalk, &stream, &streaming);
        // Score embeddings against the post-stream compacted graph.
        let mut dg = uninet_core::DynamicGraph::new(graph.clone(), true);
        for &m in &stream {
            dg.apply(m);
        }
        let final_graph = dg.materialize();
        let auc = auc_of(&final_graph, &result.embeddings);
        aucs.push(auc);
        table.add_row(&[
            label.to_string(),
            format!("{:.2}", result.timing.learn.as_secs_f64()),
            format!("{auc:.4}"),
            format!("{}", result.train_stats.pairs_processed),
            format!("{}", report.incremental_passes),
        ]);
        json_training.push(Json::Obj(vec![
            ("training", Json::Str(label.to_string())),
            ("learn_s", Json::Num(result.timing.learn.as_secs_f64())),
            ("link_pred_auc", Json::Num(auc)),
            (
                "pairs_trained",
                Json::Int(result.train_stats.pairs_processed),
            ),
            (
                "incremental_passes",
                Json::Int(report.incremental_passes as u64),
            ),
            (
                "incremental_walks",
                Json::Int(report.incremental_walks_trained as u64),
            ),
        ]));
    }
    emit(&table, "exp_ingest_training");
    println!(
        "incremental AUC {:.4} vs full-retrain AUC {:.4} (delta {:+.4})",
        aucs[1],
        aucs[0],
        aucs[1] - aucs[0]
    );

    emit_json(
        "BENCH_streaming",
        &Json::Obj(vec![
            ("experiment", Json::Str("exp_ingest".to_string())),
            ("nodes", Json::Int(graph.num_nodes() as u64)),
            ("edges", Json::Int(graph.num_edges() as u64)),
            ("updates", Json::Int(stream.len() as u64)),
            ("worker_threads", Json::Int(threads as u64)),
            (
                "hardware_threads",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|p| p.get() as u64)
                        .unwrap_or(0),
                ),
            ),
            ("pipelines", Json::Arr(json_pipelines)),
            (
                "sharded_speedup",
                Json::Obj(
                    speedups
                        .iter()
                        .map(|&(name, s)| (name, Json::Num(s)))
                        .collect(),
                ),
            ),
            ("training", Json::Arr(json_training)),
            (
                "auc_delta_incremental_vs_full",
                Json::Num(aucs[1] - aucs[0]),
            ),
        ]),
    );
}
