//! Concurrent-ingestion experiment: serial vs. sharded streaming pipelines,
//! full retrain vs. incremental embedding updates, and the latency of
//! embedding queries served concurrently with an active stream.
//!
//! 1. **Pipeline throughput** — replay the same mixed update stream through
//!    [`Engine::stream`] with 1 ingest thread (the serial path: batch loop,
//!    serial maintenance, serial refresh) and with N ingest threads
//!    (bounded-queue intake, vertex-range sharded application, parallel
//!    sampler maintenance and walk refresh). Reports sustained updates/s and
//!    the per-phase latency split. On a multi-core host the sharded pipeline
//!    should clear ≥2x the serial throughput; on a single hardware thread the
//!    two collapse to the same schedule.
//! 2. **Incremental vs. full retrain** — same stream, embeddings either
//!    retrained from scratch on the refreshed corpus or updated online on
//!    regenerated walks only. Compares link-prediction AUC on the final
//!    graph (expected: within noise) and the training-phase time; no query
//!    load runs here, keeping these columns comparable across PRs.
//! 3. **Concurrent query service** — a dedicated sharded incremental session
//!    with reader threads hammering `top_k` against the engine's embedding
//!    store; per-query latency (including snapshot/lock acquisition) is the
//!    "serving while training" measurement.
//! 4. **Exact vs. ANN top-k** — the same trained embeddings served through
//!    the brute-force scan and through the per-snapshot HNSW index,
//!    side by side: median/p95 latency, recall@10 against the exact result,
//!    the per-epoch index build cost, and the batch-API amortization of
//!    snapshot acquisition.
//! 5. **Durability** — the same stream without a WAL, with an unsynced WAL
//!    and with fsync-per-append, plus a timed crash recovery; the streaming
//!    overhead of each fsync policy and the cold-restart latency.
//! 6. **Query-plane raw speed** — the unified SIMD distance kernels against
//!    their scalar reference at d=128, the int8-quantized store's recall@10
//!    and latency against the f32 exact scan, and the incremental HNSW
//!    republish cost against a full rebuild across drifted epochs.
//! 7. **Open-world churn** — node arrivals wired into the live graph plus
//!    retirements, streamed through the same pipeline: sustained churn
//!    throughput, cold-start burn-in latency, and cold-start recall@10
//!    against an established-node baseline.
//!
//! Emits `results/BENCH_streaming.json` so the perf trajectory is tracked
//! across PRs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use uninet_bench::{emit, emit_json, HarnessConfig, Json};
use uninet_core::kernels;
use uninet_core::{
    EdgeSamplerKind, Engine, FsyncPolicy, InitStrategy, ModelSpec, QueryMode, StreamingConfig,
    StreamingReport, Table, UniNetConfig,
};
use uninet_dyngraph::GraphMutation;
use uninet_eval::{link_prediction_auc, LinkPredictionConfig};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::{Graph, NodeId};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A mixed stream (70% reweights, 20% inserts, 10% deletes) over live edges.
fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.num_nodes() as NodeId;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let deg = graph.degree(src);
        if deg == 0 {
            continue;
        }
        let dst = graph.neighbor_at(src, rng.gen_range(0..deg));
        let roll = rng.gen_range(0usize..10);
        out.push(if roll < 7 {
            GraphMutation::UpdateWeight {
                src,
                dst,
                weight: rng.gen_range(0.5f32..4.0),
            }
        } else if roll < 9 {
            GraphMutation::AddEdge {
                src,
                dst: rng.gen_range(0..n),
                weight: rng.gen_range(0.5f32..2.0),
            }
        } else {
            GraphMutation::RemoveEdge { src, dst }
        });
    }
    out
}

fn pipeline_config(cfg: &HarnessConfig, threads: usize, sampler: EdgeSamplerKind) -> UniNetConfig {
    let mut uninet = UniNetConfig::default();
    uninet.walk.num_walks = cfg.num_walks().min(4);
    uninet.walk.walk_length = cfg.walk_length().min(40);
    uninet.walk.num_threads = threads;
    uninet.walk.sampler = sampler;
    uninet.embedding.dim = 64;
    uninet.embedding.epochs = 2;
    uninet.embedding.num_threads = threads;
    uninet
}

fn engine_for(graph: &Graph, config: UniNetConfig, streaming: StreamingConfig) -> Engine {
    Engine::builder()
        .graph(graph.clone())
        .model(ModelSpec::DeepWalk)
        .config(config)
        .streaming(streaming)
        .build()
        .expect("benchmark configuration is valid")
}

fn report_json(sampler: &str, label: &str, report: &StreamingReport, wall: f64) -> Json {
    Json::Obj(vec![
        ("sampler", Json::Str(sampler.to_string())),
        ("pipeline", Json::Str(label.to_string())),
        ("updates_per_sec", Json::Num(report.update_throughput)),
        ("batches", Json::Int(report.batches as u64)),
        ("apply_ms", Json::Num(report.apply_time.as_secs_f64() * 1e3)),
        (
            "maintain_ms",
            Json::Num(report.maintain_time.as_secs_f64() * 1e3),
        ),
        (
            "refresh_ms",
            Json::Num(report.refresh_time.as_secs_f64() * 1e3),
        ),
        ("wall_s", Json::Num(wall)),
        (
            "walks_refreshed",
            Json::Int(report.refresh.walks_refreshed as u64),
        ),
        (
            "postings_pruned",
            Json::Int(report.refresh.postings_pruned as u64),
        ),
        (
            "chains_preserved",
            Json::Int(report.maintenance.chains_preserved as u64),
        ),
        (
            "queue_peak_depth",
            Json::Int(report.queue.peak_depth as u64),
        ),
        (
            "queue_backpressure_ms",
            Json::Num(report.queue.producer_wait.as_secs_f64() * 1e3),
        ),
        ("compactions", Json::Int(report.compactions as u64)),
    ])
}

fn auc_of(graph: &Graph, embeddings: &uninet_core::Embeddings) -> f64 {
    let edges: Vec<(u32, u32)> = graph.all_edges().map(|(u, v, _)| (u, v)).collect();
    link_prediction_auc(
        graph.num_nodes(),
        &edges,
        |u, v| graph.has_edge(u, v),
        |u, v| embeddings.cosine_similarity(u, v) as f64,
        &LinkPredictionConfig {
            num_pairs: 400,
            seed: 7,
        },
    )
}

/// Per-query latency statistics from the concurrent readers.
#[derive(Debug, Default, Clone, Copy)]
struct QueryStats {
    queries: usize,
    mean_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_epoch: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Spawns `readers` threads that issue `top_k` queries against `engine`'s
/// store until `stop` flips, and aggregates their latency distribution.
fn run_query_readers(
    engine: &Engine,
    readers: usize,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<(Vec<f64>, u64)>> {
    (0..readers)
        .map(|i| {
            let store = engine.store();
            let stop = Arc::clone(stop);
            let num_nodes = engine.num_nodes() as u32;
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + i as u64);
                let mut latencies_us = Vec::new();
                let mut max_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let node = rng.gen_range(0..num_nodes);
                    // Queries go through the store service path, whose timer
                    // covers snapshot acquisition too — the read lock is the
                    // only step a concurrent publisher can block, so excluding
                    // it would hide writer-induced stalls. The same path also
                    // feeds the engine's `query.top_k.*` latency histograms.
                    // The caller primes the store with a batch train, so the
                    // first snapshot is already published when readers start.
                    let t = Instant::now();
                    let top = store.top_k(node, 10);
                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                    max_epoch = max_epoch.max(store.epoch());
                    assert!(top.len() <= 10);
                }
                (latencies_us, max_epoch)
            })
        })
        .collect()
}

fn collect_query_stats(handles: Vec<std::thread::JoinHandle<(Vec<f64>, u64)>>) -> QueryStats {
    let mut all = Vec::new();
    let mut max_epoch = 0;
    for h in handles {
        let (lat, epoch) = h.join().expect("query reader panicked");
        all.extend(lat);
        max_epoch = max_epoch.max(epoch);
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    QueryStats {
        queries: all.len(),
        mean_us: if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        },
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
        max_epoch,
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let graph = barabasi_albert(cfg.nodes(20_000), 8, true, 21);
    let stream = mixed_stream(&graph, if cfg.quick { 4_000 } else { 20_000 }, 77);
    println!(
        "ingestion experiment over BA graph: {} nodes, {} edges, {} updates, {} worker threads",
        graph.num_nodes(),
        graph.num_edges(),
        stream.len(),
        threads,
    );

    // Part 1: serial vs. sharded pipeline on the same stream, per sampler.
    // The M-H rows show that UniNet's sampler leaves (almost) nothing to
    // parallelize — reweights are O(1) with zero rebuild work — while the
    // alias rows carry the O(deg)-per-state rebuilds whose fan-out is where
    // the sharded pipeline earns its throughput on multi-core hosts.
    let mut table = Table::new(
        "Concurrent ingestion — serial vs. sharded streaming pipeline (DeepWalk)",
        &[
            "sampler",
            "pipeline",
            "updates/s (apply+maintain)",
            "updates/s (incl. refresh)",
            "apply ms",
            "maintain ms",
            "refresh ms",
            "walks refreshed",
            "queue backpressure ms",
        ],
    );
    let mut json_pipelines = Vec::new();
    let mut speedups = Vec::new();
    for (sampler_name, sampler) in [
        (
            "UniNet(M-H)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        ("Alias", EdgeSamplerKind::Alias),
    ] {
        let mut throughputs = Vec::new();
        for (label, ingest_threads) in [("serial", 1usize), ("sharded", threads)] {
            let streaming = StreamingConfig {
                batch_size: 1024,
                compaction_threshold: 2048,
                ingest_threads,
                queue_capacity: 8,
                ..Default::default()
            };
            let engine = engine_for(
                &graph,
                pipeline_config(&cfg, ingest_threads, sampler),
                streaming,
            );
            let t = Instant::now();
            let outcome = engine
                .stream_blocking(stream.clone())
                .expect("engine is idle");
            let report = outcome.report;
            let wall = t.elapsed().as_secs_f64();
            // End-to-end streaming throughput: every phase of the update path
            // (apply + maintain + refresh). Walk refresh dominates and is the
            // phase the thread fan-out accelerates on multi-core hosts.
            let stream_secs = (report.apply_time + report.maintain_time + report.refresh_time)
                .as_secs_f64()
                .max(1e-9);
            let applied = (report.weight_mutations + report.topology_mutations) as f64;
            let pipeline_throughput = applied / stream_secs;
            table.add_row(&[
                sampler_name.to_string(),
                label.to_string(),
                format!("{:.0}", report.update_throughput),
                format!("{pipeline_throughput:.0}"),
                format!("{:.2}", report.apply_time.as_secs_f64() * 1e3),
                format!("{:.2}", report.maintain_time.as_secs_f64() * 1e3),
                format!("{:.2}", report.refresh_time.as_secs_f64() * 1e3),
                format!("{}", report.refresh.walks_refreshed),
                format!("{:.2}", report.queue.producer_wait.as_secs_f64() * 1e3),
            ]);
            throughputs.push(pipeline_throughput);
            let mut json = report_json(sampler_name, label, &report, wall);
            if let Json::Obj(fields) = &mut json {
                fields.push(("pipeline_updates_per_sec", Json::Num(pipeline_throughput)));
            }
            json_pipelines.push(json);
        }
        let speedup = if throughputs[0] > 0.0 {
            throughputs[1] / throughputs[0]
        } else {
            0.0
        };
        println!("{sampler_name}: sharded/serial streaming throughput {speedup:.2}x");
        speedups.push((sampler_name, speedup));
    }
    emit(&table, "exp_ingest_pipeline");
    println!();

    // Part 2: full retrain vs. incremental training on regenerated walks.
    // No query readers run here, so the learn-time and AUC columns stay
    // comparable across PRs (the concurrent-query measurement has its own
    // dedicated session in part 3 below).
    let mut table = Table::new(
        "Concurrent ingestion — full retrain vs. incremental embedding updates",
        &[
            "training",
            "learn time s",
            "link-pred AUC",
            "pairs trained",
            "incremental passes",
            "snapshots",
        ],
    );
    let mut json_training = Vec::new();
    let mut aucs = Vec::new();
    for (label, incremental) in [("full-retrain", false), ("incremental", true)] {
        // Coarse batches keep refresh rounds (and with them the incremental
        // training volume) low: on hub-heavy graphs every round touches a
        // large corpus fraction, so round count dominates incremental cost.
        let streaming = StreamingConfig {
            batch_size: stream.len().div_ceil(4).max(1),
            compaction_threshold: 2048,
            ingest_threads: threads,
            incremental_train: incremental,
            ..Default::default()
        };
        let engine = engine_for(
            &graph,
            pipeline_config(
                &cfg,
                threads,
                EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            ),
            streaming,
        );
        let outcome = engine
            .stream_blocking(stream.clone())
            .expect("engine is idle");

        let result = outcome.result;
        let report = outcome.report;
        // Score embeddings against the post-stream compacted graph.
        let mut dg = uninet_core::DynamicGraph::new(graph.clone(), true);
        for &m in &stream {
            dg.apply(m);
        }
        let final_graph = dg.materialize();
        let auc = auc_of(&final_graph, &result.embeddings);
        aucs.push(auc);
        table.add_row(&[
            label.to_string(),
            format!("{:.2}", result.timing.learn.as_secs_f64()),
            format!("{auc:.4}"),
            format!("{}", result.train_stats.pairs_processed),
            format!("{}", report.incremental_passes),
            format!("{}", report.snapshots_published),
        ]);
        json_training.push(Json::Obj(vec![
            ("training", Json::Str(label.to_string())),
            ("learn_s", Json::Num(result.timing.learn.as_secs_f64())),
            ("link_pred_auc", Json::Num(auc)),
            (
                "pairs_trained",
                Json::Int(result.train_stats.pairs_processed),
            ),
            (
                "incremental_passes",
                Json::Int(report.incremental_passes as u64),
            ),
            (
                "incremental_walks",
                Json::Int(report.incremental_walks_trained as u64),
            ),
            (
                "snapshots_published",
                Json::Int(report.snapshots_published as u64),
            ),
        ]));
    }
    emit(&table, "exp_ingest_training");
    println!(
        "incremental AUC {:.4} vs full-retrain AUC {:.4} (delta {:+.4})",
        aucs[1],
        aucs[0],
        aucs[1] - aucs[0]
    );
    println!();

    // Part 3: the concurrent query service — reader threads hammer `top_k`
    // against the engine's embedding store (timer includes snapshot/lock
    // acquisition) for the whole duration of a sharded incremental session.
    // The store is primed by a batch train so queries are answered from
    // epoch 1; each refresh round then publishes a fresh snapshot.
    let num_readers = 2usize;
    let engine = engine_for(
        &graph,
        pipeline_config(
            &cfg,
            threads,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        StreamingConfig {
            batch_size: stream.len().div_ceil(4).max(1),
            compaction_threshold: 2048,
            ingest_threads: threads,
            incremental_train: true,
            ..Default::default()
        },
    );
    engine.train().expect("engine is idle");
    let stop = Arc::new(AtomicBool::new(false));
    let readers = run_query_readers(&engine, num_readers, &stop);
    let wall = Instant::now();
    let outcome = engine
        .stream_blocking(stream.clone())
        .expect("engine is idle");
    let stream_wall_s = wall.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let queries = collect_query_stats(readers);
    let mut table = Table::new(
        "Concurrent query service — top-k latency during active streaming",
        &[
            "readers",
            "queries served",
            "queries/s",
            "query mean us",
            "query p95 us",
            "query p99 us",
            "snapshots",
            "final epoch",
        ],
    );
    table.add_row(&[
        format!("{num_readers}"),
        format!("{}", queries.queries),
        format!("{:.0}", queries.queries as f64 / stream_wall_s.max(1e-9)),
        format!("{:.1}", queries.mean_us),
        format!("{:.1}", queries.p95_us),
        format!("{:.1}", queries.p99_us),
        format!("{}", outcome.report.snapshots_published),
        format!("{}", outcome.epoch),
    ]);
    emit(&table, "exp_ingest_queries");
    println!(
        "query service: {} top-k queries served while streaming \
         (mean {:.1} us, p95 {:.1} us, p99 {:.1} us, max epoch seen {})",
        queries.queries, queries.mean_us, queries.p95_us, queries.p99_us, queries.max_epoch,
    );
    let json_queries = Json::Obj(vec![
        ("query_readers", Json::Int(num_readers as u64)),
        ("queries_served", Json::Int(queries.queries as u64)),
        (
            "queries_per_sec",
            Json::Num(queries.queries as f64 / stream_wall_s.max(1e-9)),
        ),
        ("query_mean_us", Json::Num(queries.mean_us)),
        ("query_p95_us", Json::Num(queries.p95_us)),
        ("query_p99_us", Json::Num(queries.p99_us)),
        ("query_max_epoch", Json::Int(queries.max_epoch)),
        (
            "snapshots_published",
            Json::Int(outcome.report.snapshots_published as u64),
        ),
        ("stream_wall_s", Json::Num(stream_wall_s)),
    ]);
    println!();

    // Part 4: exact vs. ANN serving over the same trained embeddings. The
    // part-3 session's final vectors are republished into an ANN-enabled
    // store — no redundant retrain, and both paths (plus part 3 above)
    // serve the very same embeddings; the only added cost is one index
    // build, which is exactly the per-epoch price being measured.
    // Registering the side store's telemetry in the engine's registry makes
    // both stores share the same `query.*`/`engine.publish.*` instruments, so
    // the telemetry section below carries exact AND ANN latency quantiles.
    let ann_store = uninet_core::EmbeddingStore::with_ann(uninet_core::AnnConfig::default())
        .instrumented(uninet_core::StoreTelemetry::registered(
            &engine.metrics_registry(),
        ));
    ann_store.publish(engine.snapshot().embeddings().clone());
    let snapshot = ann_store.snapshot();
    let index = snapshot.ann().expect("ANN engine builds an index");
    let ann_build_ms = index.build_time().as_secs_f64() * 1e3;
    let k = 10usize;
    let num_queries = if cfg.quick { 200usize } else { 1000 };
    let mut rng = SmallRng::seed_from_u64(4242);
    let query_nodes: Vec<u32> = (0..num_queries)
        .map(|_| rng.gen_range(0..snapshot.num_nodes() as u32))
        .collect();

    let mut table = Table::new(
        "Query service — exact scan vs. HNSW ANN top-k over one snapshot",
        &[
            "mode",
            "median us",
            "p95 us",
            "queries/s",
            "recall@10",
            "index build ms",
        ],
    );
    let mut ann_json_fields: Vec<(&'static str, Json)> = vec![
        ("k", Json::Int(k as u64)),
        ("queries", Json::Int(num_queries as u64)),
        ("ann_build_ms", Json::Num(ann_build_ms)),
    ];
    let mut medians = Vec::new();
    let mut exact_results: Vec<Vec<(u32, f32)>> = Vec::new();
    for mode in [QueryMode::Exact, QueryMode::Ann] {
        let mut latencies = Vec::with_capacity(query_nodes.len());
        let mut results = Vec::with_capacity(query_nodes.len());
        for &node in &query_nodes {
            let t = Instant::now();
            let hits = snapshot.top_k_mode(node, k, mode);
            latencies.push(t.elapsed().as_secs_f64() * 1e6);
            results.push(hits);
        }
        let total_s = latencies.iter().sum::<f64>() / 1e6;
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = percentile(&latencies, 0.5);
        let p95 = percentile(&latencies, 0.95);
        let (label, recall) = match mode {
            QueryMode::Exact => {
                exact_results = results;
                ("exact-scan", 1.0)
            }
            QueryMode::Ann => {
                let mut hits = 0usize;
                let mut total = 0usize;
                for (approx, exact) in results.iter().zip(&exact_results) {
                    let exact_ids: Vec<u32> = exact.iter().map(|&(u, _)| u).collect();
                    hits += approx
                        .iter()
                        .filter(|&&(u, _)| exact_ids.contains(&u))
                        .count();
                    total += exact.len();
                }
                ("hnsw-ann", hits as f64 / total.max(1) as f64)
            }
        };
        table.add_row(&[
            label.to_string(),
            format!("{median:.1}"),
            format!("{p95:.1}"),
            format!("{:.0}", num_queries as f64 / total_s.max(1e-9)),
            format!("{recall:.4}"),
            if matches!(mode, QueryMode::Ann) {
                format!("{ann_build_ms:.1}")
            } else {
                "-".to_string()
            },
        ]);
        medians.push(median);
        let qps = num_queries as f64 / total_s.max(1e-9);
        match mode {
            QueryMode::Exact => {
                ann_json_fields.push(("exact_median_us", Json::Num(median)));
                ann_json_fields.push(("exact_p95_us", Json::Num(p95)));
                ann_json_fields.push(("exact_queries_per_sec", Json::Num(qps)));
            }
            QueryMode::Ann => {
                ann_json_fields.push(("ann_median_us", Json::Num(median)));
                ann_json_fields.push(("ann_p95_us", Json::Num(p95)));
                ann_json_fields.push(("ann_queries_per_sec", Json::Num(qps)));
                ann_json_fields.push(("recall_at_10", Json::Num(recall)));
            }
        }
    }
    emit(&table, "exp_ingest_ann");
    let ann_speedup = if medians[1] > 0.0 {
        medians[0] / medians[1]
    } else {
        0.0
    };
    ann_json_fields.push(("ann_speedup_median", Json::Num(ann_speedup)));
    println!(
        "ann serving: median {:.1} us vs exact {:.1} us ({:.2}x), index built in {:.1} ms",
        medians[1], medians[0], ann_speedup, ann_build_ms,
    );

    // Batch-API amortization: the same slab through per-call store queries
    // (one read lock each) and through one top_k_batch (one lock, one epoch).
    let store = &ann_store;
    let t = Instant::now();
    for &node in &query_nodes {
        let _ = store.top_k_mode(node, k, QueryMode::Ann);
    }
    let per_call_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let batch = store.top_k_batch(&query_nodes, k, QueryMode::Ann);
    let batch_s = t.elapsed().as_secs_f64();
    assert_eq!(batch.len(), query_nodes.len());
    println!(
        "batch api: {} queries in {:.1} ms batched vs {:.1} ms per-call",
        query_nodes.len(),
        batch_s * 1e3,
        per_call_s * 1e3,
    );
    ann_json_fields.push(("batch_total_ms", Json::Num(batch_s * 1e3)));
    ann_json_fields.push(("per_call_total_ms", Json::Num(per_call_s * 1e3)));
    let json_ann = Json::Obj(ann_json_fields);
    println!();

    // Part 5: durability — the WAL-append tax on streaming throughput, and
    // how long a cold restart takes. Three identical sharded incremental
    // sessions: no WAL (baseline), WAL without fsync (pure encode+write
    // cost), WAL with fsync-per-append (the full durable configuration);
    // then a timed `Engine::builder().recover(..)` from the durable dir.
    let dur_root = std::env::temp_dir().join(format!("uninet-bench-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dur_root);
    let mut table = Table::new(
        "Durability — WAL-append overhead and crash recovery (sharded incremental)",
        &[
            "configuration",
            "stream wall s",
            "updates/s",
            "overhead %",
            "wal bytes",
            "snapshots",
        ],
    );
    let mut dur_json_fields: Vec<(&'static str, Json)> = Vec::new();
    let mut dur_walls = Vec::new();
    for (label, key, policy) in [
        ("no-wal", "no_wal", None),
        (
            "wal fsync=never",
            "wal_fsync_never",
            Some(FsyncPolicy::Never),
        ),
        (
            "wal fsync=always",
            "wal_fsync_always",
            Some(FsyncPolicy::Always),
        ),
    ] {
        let streaming = StreamingConfig {
            batch_size: 1024,
            compaction_threshold: 2048,
            ingest_threads: threads,
            incremental_train: true,
            ..Default::default()
        };
        let mut builder = Engine::builder()
            .graph(graph.clone())
            .model(ModelSpec::DeepWalk)
            .config(pipeline_config(
                &cfg,
                threads,
                EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            ))
            .streaming(streaming);
        if let Some(policy) = policy {
            builder = builder
                .wal(dur_root.join(key))
                .snapshot_every(8)
                .wal_fsync(policy);
        }
        let engine = builder.build().expect("durable benchmark configuration");
        let t = Instant::now();
        let outcome = engine
            .stream_blocking(stream.clone())
            .expect("engine is idle");
        let wall = t.elapsed().as_secs_f64();
        dur_walls.push(wall);
        let overhead_pct = (wall / dur_walls[0].max(1e-9) - 1.0) * 100.0;
        let (wal_bytes, snapshots) = outcome
            .report
            .durability
            .as_ref()
            .map(|d| {
                assert!(d.wal_error.is_none(), "WAL degraded: {:?}", d.wal_error);
                (d.wal_bytes, d.snapshots_written)
            })
            .unwrap_or((0, 0));
        table.add_row(&[
            label.to_string(),
            format!("{wall:.2}"),
            format!("{:.0}", outcome.report.update_throughput),
            if policy.is_none() {
                "-".to_string()
            } else {
                format!("{overhead_pct:+.1}")
            },
            format!("{wal_bytes}"),
            format!("{snapshots}"),
        ]);
        dur_json_fields.push((
            key,
            Json::Obj(vec![
                ("wall_s", Json::Num(wall)),
                (
                    "updates_per_sec",
                    Json::Num(outcome.report.update_throughput),
                ),
                ("overhead_pct", Json::Num(overhead_pct)),
                ("wal_bytes", Json::Int(wal_bytes)),
                ("snapshots_written", Json::Int(snapshots as u64)),
            ]),
        ));
    }
    // Timed cold restart from the fully durable directory.
    let t = Instant::now();
    let recovered = Engine::builder()
        .recover(dur_root.join("wal_fsync_always"))
        .build()
        .expect("recovery from the benchmark WAL");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let summary = recovered.recovery().expect("recovery summary").clone();
    println!(
        "durability: fsync=never {:+.1}% / fsync=always {:+.1}% streaming overhead; \
         recovery to epoch {} in {recovery_ms:.1} ms ({} batches replayed)",
        (dur_walls[1] / dur_walls[0].max(1e-9) - 1.0) * 100.0,
        (dur_walls[2] / dur_walls[0].max(1e-9) - 1.0) * 100.0,
        summary.epoch,
        summary.replayed_batches,
    );
    dur_json_fields.push(("recovery_ms", Json::Num(recovery_ms)));
    dur_json_fields.push(("recovered_epoch", Json::Int(summary.epoch)));
    dur_json_fields.push((
        "replayed_batches",
        Json::Int(summary.replayed_batches as u64),
    ));
    dur_json_fields.push((
        "restored_embeddings",
        Json::Bool(summary.restored_embeddings),
    ));
    emit(&table, "exp_ingest_durability");
    let json_durability = Json::Obj(dur_json_fields);
    let _ = std::fs::remove_dir_all(&dur_root);

    // Part 6a: the unified SIMD kernels vs their scalar reference at d=128.
    // `kernels::reference` accumulates sequentially in f32 (the compiler
    // cannot legally reorder that), so it is an honest scalar baseline even
    // in a release build; the dispatched kernels pick avx2/sse2 at runtime.
    let kdim = 128usize;
    let reps = if cfg.quick { 50_000usize } else { 400_000 };
    let mut rng = SmallRng::seed_from_u64(99);
    let pool: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..kdim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    // One untimed pass warms the cache and forces backend detection.
    let _ = std::hint::black_box(kernels::dot(&pool[0], &pool[1]));
    let bench_ns = |f: &mut dyn FnMut(&[f32], &[f32]) -> f32| -> f64 {
        let mut acc = 0.0f32;
        let t = Instant::now();
        for i in 0..reps {
            let a = &pool[i & 63];
            let b = &pool[(i * 7 + 3) & 63];
            acc += f(a, b);
        }
        std::hint::black_box(acc);
        t.elapsed().as_secs_f64() * 1e9 / reps as f64
    };
    let dot_simd_ns = bench_ns(&mut |a, b| kernels::dot(a, b));
    let dot_scalar_ns = bench_ns(&mut |a, b| kernels::reference::dot(a, b));
    let cos_simd_ns = bench_ns(&mut |a, b| kernels::cosine(a, b));
    let cos_scalar_ns = bench_ns(&mut |a, b| {
        let denom =
            (kernels::reference::squared_norm(a) * kernels::reference::squared_norm(b)).sqrt();
        kernels::reference::dot(a, b) / denom.max(1e-12)
    });
    let dot_speedup = dot_scalar_ns / dot_simd_ns.max(1e-9);
    let cos_speedup = cos_scalar_ns / cos_simd_ns.max(1e-9);
    let mut table = Table::new(
        "Query plane — dispatched SIMD kernels vs scalar reference (d=128)",
        &["kernel", "backend", "simd ns/op", "scalar ns/op", "speedup"],
    );
    table.add_row(&[
        "dot".to_string(),
        kernels::backend_name().to_string(),
        format!("{dot_simd_ns:.1}"),
        format!("{dot_scalar_ns:.1}"),
        format!("{dot_speedup:.2}x"),
    ]);
    table.add_row(&[
        "cosine".to_string(),
        kernels::backend_name().to_string(),
        format!("{cos_simd_ns:.1}"),
        format!("{cos_scalar_ns:.1}"),
        format!("{cos_speedup:.2}x"),
    ]);
    emit(&table, "exp_ingest_kernels");
    println!(
        "kernels[{}]: dot {dot_simd_ns:.1} ns vs scalar {dot_scalar_ns:.1} ns ({dot_speedup:.2}x), \
         cosine {cos_simd_ns:.1} ns vs scalar {cos_scalar_ns:.1} ns ({cos_speedup:.2}x)",
        kernels::backend_name(),
    );
    let json_kernels = Json::Obj(vec![
        ("backend", Json::Str(kernels::backend_name().to_string())),
        ("dim", Json::Int(kdim as u64)),
        ("reps", Json::Int(reps as u64)),
        ("dot_simd_ns", Json::Num(dot_simd_ns)),
        ("dot_scalar_ns", Json::Num(dot_scalar_ns)),
        ("dot_speedup", Json::Num(dot_speedup)),
        ("cosine_simd_ns", Json::Num(cos_simd_ns)),
        ("cosine_scalar_ns", Json::Num(cos_scalar_ns)),
        ("cosine_speedup", Json::Num(cos_speedup)),
    ]);

    // Part 6b: int8 quantized serving over the same trained embeddings.
    // The quantized store ranks candidates on the int8 codes and re-scores
    // its top k·rerank in exact f32, so recall against the part-4 f32 exact
    // scan is the quality axis and the int8 scan latency is the speed axis.
    let quant_store = uninet_core::EmbeddingStore::with_ann(uninet_core::AnnConfig {
        quantize: true,
        ..Default::default()
    });
    quant_store.publish(engine.snapshot().embeddings().clone());
    let quant_snapshot = quant_store.snapshot();
    assert!(quant_snapshot.is_quantized());
    let mut table = Table::new(
        "Query plane — int8 quantized scan/ANN vs the f32 exact baseline",
        &["mode", "median us", "p95 us", "recall@10 vs f32"],
    );
    let mut quant_json_fields: Vec<(&'static str, Json)> = Vec::new();
    for (mode, label, median_key, p95_key, recall_key) in [
        (
            QueryMode::Exact,
            "int8-scan",
            "exact_median_us",
            "exact_p95_us",
            "exact_recall_at_10",
        ),
        (
            QueryMode::Ann,
            "int8-hnsw",
            "ann_median_us",
            "ann_p95_us",
            "ann_recall_at_10",
        ),
    ] {
        let mut latencies = Vec::with_capacity(query_nodes.len());
        let mut hits = 0usize;
        let mut total = 0usize;
        for (&node, exact) in query_nodes.iter().zip(&exact_results) {
            let t = Instant::now();
            let found = quant_snapshot.top_k_mode(node, k, mode);
            latencies.push(t.elapsed().as_secs_f64() * 1e6);
            hits += found
                .iter()
                .filter(|&&(u, _)| exact.iter().any(|&(e, _)| e == u))
                .count();
            total += exact.len();
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = percentile(&latencies, 0.5);
        let p95 = percentile(&latencies, 0.95);
        let recall = hits as f64 / total.max(1) as f64;
        table.add_row(&[
            label.to_string(),
            format!("{median:.1}"),
            format!("{p95:.1}"),
            format!("{recall:.4}"),
        ]);
        println!("quantized {label}: median {median:.1} us, recall@10 {recall:.4}");
        quant_json_fields.push((median_key, Json::Num(median)));
        quant_json_fields.push((p95_key, Json::Num(p95)));
        quant_json_fields.push((recall_key, Json::Num(recall)));
    }
    emit(&table, "exp_ingest_quantized");
    let json_quantized = Json::Obj(quant_json_fields);

    // Part 6c: incremental HNSW republish vs full rebuild. Both stores get
    // the same base epoch (untimed — the incremental store has nothing to
    // reuse yet), then the same drifted epochs: each jitters ~12% of rows,
    // the incremental store grafts the unchanged graph and re-inserts only
    // the drifted nodes while the full store rebuilds from scratch.
    let base = engine.snapshot().embeddings().clone();
    let (edim, n) = (base.dim(), base.num_nodes());
    let inc_store = uninet_core::EmbeddingStore::with_ann(uninet_core::AnnConfig::default());
    let full_store = uninet_core::EmbeddingStore::with_ann(uninet_core::AnnConfig {
        incremental: false,
        ..Default::default()
    });
    inc_store.publish(base.clone());
    full_store.publish(base.clone());
    let drift_epochs = 5usize;
    let drift_rows = (n as f64 * 0.12) as usize;
    let mut flat = base.as_flat().to_vec();
    let (mut inc_build_ms, mut full_build_ms) = (0.0f64, 0.0f64);
    let (mut reused_total, mut reinserted_total) = (0u64, 0u64);
    let mut rng = SmallRng::seed_from_u64(4321);
    for _ in 0..drift_epochs {
        for _ in 0..drift_rows {
            let row = rng.gen_range(0..n);
            for x in &mut flat[row * edim..(row + 1) * edim] {
                *x += rng.gen_range(-0.1f32..0.1);
            }
        }
        let drifted = uninet_core::Embeddings::from_flat(edim, flat.clone());
        inc_store.publish(drifted.clone());
        full_store.publish(drifted);
        let inc_snap = inc_store.snapshot();
        let inc_index = inc_snap.ann().expect("incremental store builds an index");
        inc_build_ms += inc_index.build_time().as_secs_f64() * 1e3;
        let stats = inc_index
            .incremental_stats()
            .expect("publish over a previous epoch grafts incrementally");
        reused_total += stats.reused as u64;
        reinserted_total += (stats.reinserted + stats.added) as u64;
        let full_snap = full_store.snapshot();
        full_build_ms += full_snap
            .ann()
            .expect("full store builds an index")
            .build_time()
            .as_secs_f64()
            * 1e3;
    }
    let build_ratio = inc_build_ms / full_build_ms.max(1e-9);
    let mut table = Table::new(
        "Query plane — incremental HNSW republish vs full rebuild (5 drifted epochs)",
        &[
            "strategy",
            "total build ms",
            "vs full rebuild",
            "nodes reused",
            "nodes re-inserted",
        ],
    );
    table.add_row(&[
        "full-rebuild".to_string(),
        format!("{full_build_ms:.1}"),
        "1.00x".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.add_row(&[
        "incremental".to_string(),
        format!("{inc_build_ms:.1}"),
        format!("{build_ratio:.2}x"),
        format!("{reused_total}"),
        format!("{reinserted_total}"),
    ]);
    emit(&table, "exp_ingest_incremental_hnsw");
    println!(
        "incremental hnsw: {inc_build_ms:.1} ms over {drift_epochs} epochs vs \
         {full_build_ms:.1} ms full rebuild ({:.0}% of full; {reused_total} reused, \
         {reinserted_total} re-inserted)",
        build_ratio * 100.0,
    );
    let json_incremental = Json::Obj(vec![
        ("drift_epochs", Json::Int(drift_epochs as u64)),
        ("drift_rows_per_epoch", Json::Int(drift_rows as u64)),
        ("incremental_build_ms", Json::Num(inc_build_ms)),
        ("full_build_ms", Json::Num(full_build_ms)),
        ("build_ratio", Json::Num(build_ratio)),
        ("nodes_reused", Json::Int(reused_total)),
        ("nodes_reinserted", Json::Int(reinserted_total)),
    ]);
    let json_query_plane = Json::Obj(vec![
        ("kernels", json_kernels),
        ("quantized", json_quantized),
        ("incremental_hnsw", json_incremental),
    ]);
    println!();

    // Part 7: open-world churn — node arrivals and retirements streaming
    // through the full pipeline (growable universe, cold-start init + boosted
    // burn-in, retired-id eviction). Reports sustained churn throughput, the
    // burn-in latency the telemetry plane sees, and cold-start recall@10: how
    // well a just-arrived node's embedding already ranks its wired graph
    // neighbours, against the same metric for long-lived nodes.
    let mut rng = SmallRng::seed_from_u64(777);
    let n0 = graph.num_nodes() as NodeId;
    let arrivals_n = (graph.num_nodes() / 20).clamp(8, 200);
    let retire_n = (graph.num_nodes() / 40).clamp(4, 100);
    let wired_per_arrival = 6usize;
    let mut retired: Vec<NodeId> = Vec::with_capacity(retire_n);
    while retired.len() < retire_n {
        let v = rng.gen_range(0..n0);
        if !retired.contains(&v) {
            retired.push(v);
        }
    }
    let mut churn: Vec<GraphMutation> = Vec::with_capacity(arrivals_n * 16);
    for &v in &retired {
        churn.push(GraphMutation::RemoveNode { node: v });
    }
    let mut arrival_neighbors: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(arrivals_n);
    for i in 0..arrivals_n {
        let v = n0 + i as NodeId;
        churn.push(GraphMutation::AddNode { node: v });
        let mut wired = Vec::with_capacity(wired_per_arrival);
        while wired.len() < wired_per_arrival {
            let t = rng.gen_range(0..n0);
            if !retired.contains(&t) && !wired.contains(&t) {
                wired.push(t);
                churn.push(GraphMutation::AddEdge {
                    src: v,
                    dst: t,
                    weight: rng.gen_range(0.5f32..2.0),
                });
            }
        }
        arrival_neighbors.push((v, wired));
        // Background edge churn over the surviving universe, so throughput
        // reflects a mixed open-world stream rather than node ops alone.
        for _ in 0..8 {
            let src = rng.gen_range(0..n0);
            let deg = graph.degree(src);
            if retired.contains(&src) || deg == 0 {
                continue;
            }
            let dst = graph.neighbor_at(src, rng.gen_range(0..deg));
            if retired.contains(&dst) {
                continue;
            }
            churn.push(GraphMutation::UpdateWeight {
                src,
                dst,
                weight: rng.gen_range(0.5f32..4.0),
            });
        }
    }
    let engine = engine_for(
        &graph,
        pipeline_config(&cfg, threads, EdgeSamplerKind::Alias),
        StreamingConfig {
            batch_size: churn.len().div_ceil(8).max(1),
            compaction_threshold: 2048,
            ingest_threads: threads,
            incremental_train: true,
            allow_churn: true,
            cold_start_burn_in: 2,
            cold_start_boost: 2.0,
            ..Default::default()
        },
    );
    engine.train().expect("engine is idle");
    let t = Instant::now();
    let churn_len = churn.len();
    let outcome = engine.stream_blocking(churn).expect("engine is idle");
    let churn_wall_s = t.elapsed().as_secs_f64();
    let churn_report = outcome.report;
    assert_eq!(churn_report.arrivals, arrivals_n, "every arrival applied");
    assert_eq!(churn_report.retirements, retire_n, "every retirement applied");
    let snapshot = engine.snapshot();
    assert_eq!(
        snapshot.live_count(),
        graph.num_nodes() - retire_n + arrivals_n,
        "the published universe tracks the churn"
    );
    for &v in &retired {
        assert!(
            snapshot.top_k(v, 5).is_empty(),
            "retired id {v} still answers top_k"
        );
    }
    // Cold-start recall@10: fraction of a node's wired neighbours present in
    // its embedding top-10, averaged over the cohort.
    let recall_at_10 = |pairs: &[(NodeId, Vec<NodeId>)]| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (v, neigh) in pairs {
            if neigh.is_empty() {
                continue;
            }
            let top: Vec<NodeId> = snapshot.top_k(*v, 10).into_iter().map(|(u, _)| u).collect();
            let hits = neigh.iter().filter(|u| top.contains(u)).count();
            total += hits as f64 / neigh.len().min(10) as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    };
    // Baseline: long-lived nodes scored on (a sample of) their real
    // neighbours, so the cold-start number has an in-run reference point.
    let mut established: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(arrivals_n);
    let mut probes = 0usize;
    while established.len() < arrivals_n && probes < graph.num_nodes() * 4 {
        probes += 1;
        let v = rng.gen_range(0..n0);
        if retired.contains(&v) || established.iter().any(|(u, _)| *u == v) {
            continue;
        }
        let deg = graph.degree(v);
        let mut neigh: Vec<NodeId> = (0..deg)
            .map(|i| graph.neighbor_at(v, i))
            .filter(|u| !retired.contains(u))
            .collect();
        neigh.truncate(wired_per_arrival);
        if neigh.is_empty() {
            continue;
        }
        established.push((v, neigh));
    }
    let cold_recall = recall_at_10(&arrival_neighbors);
    let established_recall = recall_at_10(&established);
    let churn_metrics = engine.metrics();
    let burn_in = churn_metrics.histogram("engine.train.cold_start_burn_in_ns");
    let burn_in_p50_ms = burn_in.map_or(0.0, |h| h.quantile(0.5) as f64 / 1e6);
    let burn_in_p95_ms = burn_in.map_or(0.0, |h| h.quantile(0.95) as f64 / 1e6);
    let mut table = Table::new(
        "Open-world churn — arrivals, retirements and cold-start quality",
        &[
            "metric",
            "value",
        ],
    );
    table.add_row(&[
        "churn updates/s".to_string(),
        format!("{:.0}", churn_report.update_throughput),
    ]);
    table.add_row(&["arrivals".to_string(), format!("{arrivals_n}")]);
    table.add_row(&["retirements".to_string(), format!("{retire_n}")]);
    table.add_row(&[
        "cold-started".to_string(),
        format!("{}", churn_report.cold_starts),
    ]);
    table.add_row(&[
        "burn-in p50 / p95 ms".to_string(),
        format!("{burn_in_p50_ms:.2} / {burn_in_p95_ms:.2}"),
    ]);
    table.add_row(&[
        "cold-start recall@10".to_string(),
        format!("{cold_recall:.3}"),
    ]);
    table.add_row(&[
        "established recall@10".to_string(),
        format!("{established_recall:.3}"),
    ]);
    emit(&table, "exp_ingest_open_world");
    println!(
        "open world: {churn_len} churn updates in {:.2}s ({:.0}/s); cold-start \
         recall@10 {cold_recall:.3} vs established {established_recall:.3}",
        churn_wall_s, churn_report.update_throughput,
    );
    let json_open_world = Json::Obj(vec![
        ("churn_updates", Json::Int(churn_len as u64)),
        ("arrivals", Json::Int(arrivals_n as u64)),
        ("retirements", Json::Int(retire_n as u64)),
        ("cold_starts", Json::Int(churn_report.cold_starts as u64)),
        (
            "churn_updates_per_sec",
            Json::Num(churn_report.update_throughput),
        ),
        ("wall_s", Json::Num(churn_wall_s)),
        ("burn_in_p50_ms", Json::Num(burn_in_p50_ms)),
        ("burn_in_p95_ms", Json::Num(burn_in_p95_ms)),
        ("cold_start_recall_at_10", Json::Num(cold_recall)),
        ("established_recall_at_10", Json::Num(established_recall)),
        ("universe_rows", Json::Int(snapshot.num_nodes() as u64)),
        ("live_rows", Json::Int(snapshot.live_count() as u64)),
        (
            "live_nodes_gauge",
            Json::Int(churn_metrics.gauge("engine.live_nodes").unwrap_or(0) as u64),
        ),
        (
            "arrivals_counter",
            Json::Int(churn_metrics.counter("ingest.churn.arrivals").unwrap_or(0)),
        ),
        (
            "retirements_counter",
            Json::Int(
                churn_metrics
                    .counter("ingest.churn.retirements")
                    .unwrap_or(0),
            ),
        ),
    ]);
    println!();

    emit_json(
        "BENCH_streaming",
        &Json::Obj(vec![
            ("experiment", Json::Str("exp_ingest".to_string())),
            // The harness scale knobs, so trend-file readers can tell a
            // configuration change from a performance change.
            ("scale", Json::Num(cfg.scale)),
            ("quick", Json::Bool(cfg.quick)),
            ("nodes", Json::Int(graph.num_nodes() as u64)),
            ("edges", Json::Int(graph.num_edges() as u64)),
            ("updates", Json::Int(stream.len() as u64)),
            ("worker_threads", Json::Int(threads as u64)),
            (
                "hardware_threads",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|p| p.get() as u64)
                        .unwrap_or(0),
                ),
            ),
            ("pipelines", Json::Arr(json_pipelines)),
            (
                "sharded_speedup",
                Json::Obj(
                    speedups
                        .iter()
                        .map(|&(name, s)| (name, Json::Num(s)))
                        .collect(),
                ),
            ),
            ("training", Json::Arr(json_training)),
            ("query_service", json_queries),
            ("ann_query_service", json_ann),
            ("durability", json_durability),
            ("query_plane", json_query_plane),
            ("open_world", json_open_world),
            // The part-3 engine's full telemetry snapshot: per-stage ingest
            // timings, publish/epoch gauges and per-mode query latency
            // quantiles, straight from `Engine::metrics()`.
            ("telemetry", Json::Raw(engine.metrics().to_json())),
            (
                "auc_delta_incremental_vs_full",
                Json::Num(aucs[1] - aucs[0]),
            ),
        ]),
    );
}
