//! Table II: acceptance ratio and walk time of the rejection edge sampler for
//! node2vec on a Flickr-like graph under different (p, q) settings, contrasted
//! with the parameter-insensitive M-H sampler.
//!
//! Paper reference points (Flickr, absolute seconds not comparable):
//! (1,0.25) θ=0.86 1.11X, (1,4) θ=0.36 2.28X, (1,1) θ=1.00 1.0X,
//! (4,1) θ=0.99 1.02X, (0.25,1) θ=0.25 2.60X.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use uninet_bench::{emit, social_graph, HarnessConfig};
use uninet_core::Table;
use uninet_sampler::rejection::AcceptanceStats;
use uninet_sampler::{EdgeSamplerKind, InitStrategy, RejectionSampler};
use uninet_walker::models::Node2Vec;
use uninet_walker::{RandomWalkModel, WalkEngine, WalkEngineConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    let graph = social_graph(cfg.nodes(8_000), 40.0, 2);
    println!(
        "Flickr-like graph: {} nodes, {} edges (mean degree {:.1})\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_degree()
    );

    let configs: [(f32, f32); 5] = [(1.0, 0.25), (1.0, 4.0), (1.0, 1.0), (4.0, 1.0), (0.25, 1.0)];

    let mut table = Table::new(
        "Table II — rejection sampler sensitivity for node2vec (Flickr-like)",
        &[
            "(p,q)",
            "rejection walk time (s)",
            "acceptance ratio",
            "time ratio vs (1,1)",
            "UniNet(M-H) walk time (s)",
        ],
    );

    // First measure per-(p,q) acceptance ratio with a standalone rejection
    // sampler over a sample of states (exactly the paper's θ column).
    let mut rejection_times = Vec::new();
    let mut acceptance = Vec::new();
    let mut mh_times = Vec::new();
    for &(p, q) in &configs {
        let model = Node2Vec::new(p, q);

        // Acceptance ratio measurement.
        let mut stats = AcceptanceStats::new();
        let mut rng = SmallRng::seed_from_u64(77);
        let sample_nodes: Vec<u32> = (0..graph.num_nodes() as u32)
            .step_by(17.max(graph.num_nodes() / 500))
            .collect();
        for &v in &sample_nodes {
            let deg = graph.degree(v);
            if deg < 2 {
                continue;
            }
            let state = model.initial_state(&graph, v);
            let sampler =
                RejectionSampler::new(graph.weights(v), model.rejection_bound(&graph, state));
            for _ in 0..20 {
                let outcome = sampler.sample(
                    |k| model.calculate_weight(&graph, state, graph.edge_ref(v, k)),
                    &mut rng,
                );
                stats.record(outcome);
            }
        }
        acceptance.push(stats.acceptance_ratio());

        // Walk time with the rejection sampler.
        let walk_cfg = WalkEngineConfig::default()
            .with_num_walks(cfg.num_walks().min(4))
            .with_walk_length(cfg.walk_length())
            .with_threads(16)
            .with_sampler(EdgeSamplerKind::Rejection);
        let t = Instant::now();
        let (_, timing) = WalkEngine::new(walk_cfg).generate(&graph, &model);
        rejection_times.push(timing.walk.as_secs_f64());
        let _ = t;

        // Walk time with the M-H sampler (same workload).
        let mh_cfg = walk_cfg.with_sampler(EdgeSamplerKind::MetropolisHastings(
            InitStrategy::high_weight_exact(),
        ));
        let (_, mh_timing) = WalkEngine::new(mh_cfg).generate(&graph, &model);
        mh_times.push(mh_timing.walk.as_secs_f64());
    }

    let baseline = rejection_times[2].max(1e-9); // the (1,1) column
    for (i, &(p, q)) in configs.iter().enumerate() {
        table.add_row(&[
            format!("({p}, {q})"),
            format!("{:.2}", rejection_times[i]),
            format!("{:.2}", acceptance[i]),
            format!("{:.2}X", rejection_times[i] / baseline),
            format!("{:.2}", mh_times[i]),
        ]);
    }
    emit(&table, "table2");
}
