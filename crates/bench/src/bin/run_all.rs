//! Runs every experiment binary in sequence (in quick mode unless
//! `UNINET_QUICK=0` is set explicitly), regenerating all tables and figures
//! into `results/`.

use std::process::Command;

fn main() {
    let experiments = [
        "exp_table2",
        "exp_fig1",
        "exp_table5",
        "exp_fig5",
        "exp_table6",
        "exp_table7",
        "exp_fig6",
        "exp_fig7",
    ];
    let quick = std::env::var("UNINET_QUICK").unwrap_or_else(|_| "1".to_string());
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("cannot locate binary directory");

    for exp in experiments {
        println!("\n=============================== {exp} ===============================");
        let path = exe_dir.join(exp);
        let status = Command::new(&path)
            .env("UNINET_QUICK", &quick)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("warning: {exp} exited with {status}");
        }
    }
    println!("\nAll experiments finished; see the results/ directory.");
}
