//! Figure 5: multi-label node classification accuracy (micro/macro F1) versus
//! train label fraction, for DeepWalk, node2vec under the three M-H
//! initialization strategies, and metapath2vec.
//!
//! Expected shape (paper): all UniNet variants match the reference accuracy;
//! node2vec with high-weight init is slightly better than with random init.

use uninet_bench::{emit, labeled_suite, HarnessConfig};
use uninet_core::{EdgeSamplerKind, Engine, InitStrategy, ModelSpec, Table, UniNetConfig};
use uninet_eval::multilabel::classify_with_fraction;
use uninet_graph::generators::heterogenize;

fn main() {
    let cfg = HarnessConfig::from_env();
    let fractions: Vec<f64> = if cfg.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    };

    let mut table = Table::new(
        "Figure 5 — node classification accuracy vs train fraction",
        &[
            "dataset",
            "model",
            "init",
            "train fraction",
            "micro-F1",
            "macro-F1",
        ],
    );

    for (name, lg) in labeled_suite(&cfg) {
        // Variants: deepwalk (random init ≡ high-weight for uniform weights),
        // node2vec with the three init strategies, metapath2vec on a
        // heterogenized copy of the same graph.
        let node2vec = ModelSpec::Node2Vec { p: 0.25, q: 4.0 };
        let variants: Vec<(&str, &str, ModelSpec, InitStrategy, bool)> = vec![
            (
                "deepwalk",
                "Rand",
                ModelSpec::DeepWalk,
                InitStrategy::Random,
                false,
            ),
            (
                "node2vec",
                "Weight",
                node2vec.clone(),
                InitStrategy::high_weight_exact(),
                false,
            ),
            (
                "node2vec",
                "Rand",
                node2vec.clone(),
                InitStrategy::Random,
                false,
            ),
            (
                "node2vec",
                "BurnIn",
                node2vec,
                InitStrategy::BurnIn { iterations: 100 },
                false,
            ),
            (
                "metapath2vec",
                "Rand",
                ModelSpec::MetaPath2Vec {
                    metapath: vec![0, 1, 0],
                },
                InitStrategy::Random,
                true,
            ),
        ];

        for (model_name, init_name, spec, init, needs_hetero) in variants {
            let graph = if needs_hetero {
                heterogenize(&lg.graph, 3, 1, 5)
            } else {
                lg.graph.clone()
            };
            let mut config = UniNetConfig::default();
            config.walk.num_walks = cfg.num_walks().min(6);
            config.walk.walk_length = cfg.walk_length().min(40);
            config.walk.num_threads = 16;
            config.walk.sampler = EdgeSamplerKind::MetropolisHastings(init);
            config.embedding.dim = if cfg.quick { 32 } else { 64 };
            config.embedding.epochs = 2;
            config.embedding.window = 5;
            config.embedding.num_threads = 16;

            let engine = Engine::builder()
                .graph(graph.clone())
                .model(spec.clone())
                .config(config)
                .build()
                .expect("benchmark configuration is valid");
            engine.train().expect("engine is idle");
            let snapshot = engine.snapshot();
            let features: Vec<Vec<f32>> = (0..graph.num_nodes() as u32)
                .map(|v| snapshot.embeddings().vector(v).to_vec())
                .collect();

            for &fraction in &fractions {
                let report =
                    classify_with_fraction(&features, &lg.labels, lg.num_labels, fraction, 97);
                table.add_row(&[
                    name.to_string(),
                    model_name.to_string(),
                    init_name.to_string(),
                    format!("{fraction:.1}"),
                    format!("{:.4}", report.f1.micro),
                    format!("{:.4}", report.f1.macro_),
                ]);
            }
        }
    }
    emit(&table, "fig5");
}
