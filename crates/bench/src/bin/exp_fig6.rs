//! Figure 6: random-walk generation time of deepwalk, metapath2vec, edge2vec
//! and fairwalk on the two largest graphs, decomposed into initialization cost
//! and walking cost, for KnightKing, the memory-aware sampler, and UniNet with
//! the three initialization strategies.
//!
//! Expected shape (paper): burn-in initialization spends 42-47% of the total
//! cost in initialization; random/high-weight cut that to 24-40%; UniNet beats
//! the memory-aware sampler and matches or beats KnightKing on the
//! heterogeneous models whose outliers KnightKing cannot fold.

use uninet_bench::{emit, large_suite, HarnessConfig};
use uninet_core::{ModelSpec, Table};
use uninet_graph::generators::heterogenize;
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::{WalkEngine, WalkEngineConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    let samplers: Vec<(&str, EdgeSamplerKind)> = vec![
        ("KnightKing", EdgeSamplerKind::KnightKing),
        (
            "UniNet(Rand)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        (
            "UniNet(Burnin)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 100 }),
        ),
        (
            "UniNet(Weight)",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
        ),
        ("Memory-Aware", EdgeSamplerKind::MemoryAware),
    ];
    let models = vec![
        ModelSpec::DeepWalk,
        ModelSpec::MetaPath2Vec {
            metapath: vec![0, 1, 2, 1, 0],
        },
        ModelSpec::Edge2Vec { p: 0.25, q: 0.25 },
        ModelSpec::FairWalk { p: 1.0, q: 1.0 },
    ];

    let mut table = Table::new(
        "Figure 6 — walk generation time decomposition (initialize + walk)",
        &[
            "dataset",
            "model",
            "sampler",
            "init (s)",
            "walk (s)",
            "total (s)",
            "init fraction",
        ],
    );

    for ds in large_suite(&cfg) {
        // The paper assigns random types to the large homogeneous graphs so
        // the heterogeneous models can run on them; we do the same.
        let graph = heterogenize(&ds.graph, 3, 4, 123);
        for spec in &models {
            let model = spec.instantiate(&graph).expect("benchmark specs are valid");
            for (label, kind) in &samplers {
                let walk_cfg = WalkEngineConfig::default()
                    .with_num_walks(cfg.num_walks().min(4))
                    .with_walk_length(cfg.walk_length())
                    .with_threads(16)
                    .with_sampler(*kind);
                let (_, timing) = WalkEngine::new(walk_cfg).generate(&graph, model.as_ref());
                let total = (timing.init + timing.walk).as_secs_f64();
                table.add_row(&[
                    ds.name.to_string(),
                    spec.name().to_string(),
                    label.to_string(),
                    format!("{:.2}", timing.init.as_secs_f64()),
                    format!("{:.2}", timing.walk.as_secs_f64()),
                    format!("{total:.2}"),
                    format!(
                        "{:.0}%",
                        100.0 * timing.init.as_secs_f64() / total.max(1e-9)
                    ),
                ]);
            }
        }
    }
    emit(&table, "fig6");
}
