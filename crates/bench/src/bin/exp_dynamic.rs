//! Dynamic-workload experiment (no paper counterpart — the workload the
//! paper's O(1)-update argument implies but never measures):
//!
//! 1. **Per-update maintenance cost vs. degree** — reweight one edge of a
//!    node and repair sampler state, across degree buckets. Expected shape:
//!    the M-H sampler's cost is flat in degree (nothing to rebuild), the
//!    alias sampler's cost grows with degree (O(deg) table rebuild per
//!    affected state; for node2vec, deg states per node).
//! 2. **Streaming throughput and refresh latency** — replay a mixed
//!    update stream through the incremental maintainer, comparing sustained
//!    updates/s and per-batch walk-refresh latency for M-H vs. alias, plus
//!    the full-rebuild strawman (a fresh `SamplerManager` per batch).

use std::time::{Duration, Instant};

use uninet_bench::{emit, HarnessConfig};
use uninet_core::Table;
use uninet_dyngraph::{
    DynamicGraph, GraphMutation, IncrementalMaintainer, MaintainerConfig, UpdateBatch,
    WalkRefresher,
};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::{Graph, NodeId};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::{DeepWalk, Node2Vec};
use uninet_walker::{RandomWalkModel, SamplerManager, WalkEngine, WalkEngineConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mh() -> EdgeSamplerKind {
    EdgeSamplerKind::MetropolisHastings(InitStrategy::Random)
}

/// Mean time to apply one single-edge reweight (including sampler
/// maintenance) over `reps` distinct target nodes of similar degree.
fn time_weight_updates<M: RandomWalkModel + ?Sized>(
    graph: &Graph,
    model: &M,
    kind: EdgeSamplerKind,
    nodes: &[NodeId],
    reps: usize,
) -> (Duration, usize) {
    let mut dg = DynamicGraph::new(graph.clone(), true);
    let mut manager = SamplerManager::new(dg.base(), model, kind, 0);
    let maintainer = IncrementalMaintainer::default();
    let mut rebuilt = 0usize;
    let t = Instant::now();
    for i in 0..reps {
        let v = nodes[i % nodes.len()];
        let dst = graph.neighbor_at(v, i % graph.degree(v));
        let mut batch = UpdateBatch::new();
        batch.update_weight(v, dst, 1.0 + (i % 7) as f32 * 0.5);
        let r = maintainer.apply_batch(&mut dg, &mut manager, model, &batch);
        rebuilt += r.maintenance.states_rebuilt;
    }
    (t.elapsed() / reps as u32, rebuilt)
}

/// Buckets the graph's nodes by degree (powers of two).
fn degree_buckets(graph: &Graph) -> Vec<(usize, usize, Vec<NodeId>)> {
    let mut buckets: Vec<(usize, usize, Vec<NodeId>)> = Vec::new();
    let mut lo = 4usize;
    while lo <= graph.max_degree() {
        let hi = lo * 4;
        let nodes: Vec<NodeId> = (0..graph.num_nodes() as NodeId)
            .filter(|&v| graph.degree(v) >= lo && graph.degree(v) < hi)
            .take(64)
            .collect();
        if nodes.len() >= 4 {
            buckets.push((lo, hi, nodes));
        }
        lo = hi;
    }
    buckets
}

fn part1_cost_vs_degree(graph: &Graph, reps: usize) {
    let mut table = Table::new(
        "Dynamic updates — per-reweight maintenance cost by degree (µs/update)",
        &[
            "degree",
            "model",
            "UniNet(M-H)",
            "Alias",
            "alias states rebuilt",
        ],
    );
    let deepwalk = DeepWalk::new();
    let node2vec = Node2Vec::new(0.5, 2.0);
    for (lo, hi, nodes) in degree_buckets(graph) {
        for (model_name, model) in [
            ("deepwalk", &deepwalk as &dyn RandomWalkModel),
            ("node2vec", &node2vec),
        ] {
            let (mh_t, _) = time_weight_updates(graph, model, mh(), &nodes, reps);
            let (alias_t, rebuilt) =
                time_weight_updates(graph, model, EdgeSamplerKind::Alias, &nodes, reps);
            table.add_row(&[
                format!("[{lo},{hi})"),
                model_name.to_string(),
                format!("{:.2}", mh_t.as_secs_f64() * 1e6),
                format!("{:.2}", alias_t.as_secs_f64() * 1e6),
                format!("{rebuilt}"),
            ]);
        }
    }
    emit(&table, "exp_dynamic_cost_vs_degree");
}

/// A mixed stream (70% reweights, 20% inserts, 10% deletes) over live edges.
fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.num_nodes() as NodeId;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let deg = graph.degree(src);
        if deg == 0 {
            continue;
        }
        let dst = graph.neighbor_at(src, rng.gen_range(0..deg));
        let roll = rng.gen_range(0usize..10);
        out.push(if roll < 7 {
            GraphMutation::UpdateWeight {
                src,
                dst,
                weight: rng.gen_range(0.5f32..4.0),
            }
        } else if roll < 9 {
            GraphMutation::AddEdge {
                src,
                dst: rng.gen_range(0..n),
                weight: rng.gen_range(0.5f32..2.0),
            }
        } else {
            GraphMutation::RemoveEdge { src, dst }
        });
    }
    out
}

fn part2_streaming(graph: &Graph, cfg: &HarnessConfig) {
    let model = DeepWalk::new();
    let walk_cfg = WalkEngineConfig::default()
        .with_num_walks(cfg.num_walks().min(4))
        .with_walk_length(cfg.walk_length().min(40))
        .with_threads(8);
    let stream = mixed_stream(graph, if cfg.quick { 2_000 } else { 10_000 }, 77);
    let batch_size = 128usize;

    let mut table = Table::new(
        "Dynamic updates — streaming maintenance + walk refresh (DeepWalk)",
        &[
            "strategy",
            "updates/s",
            "maintain ms/batch",
            "refresh ms/batch",
            "walks refreshed",
            "states rebuilt",
            "chains preserved",
        ],
    );

    for (label, kind, full_rebuild) in [
        ("UniNet(M-H)", mh(), false),
        ("Alias incremental", EdgeSamplerKind::Alias, false),
        ("Alias full rebuild", EdgeSamplerKind::Alias, true),
    ] {
        let mut dg = DynamicGraph::new(graph.clone(), true);
        let mut manager = SamplerManager::new(dg.base(), &model, kind, 0);
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 512,
        });
        let engine = WalkEngine::new(walk_cfg.with_sampler(kind));
        let starts: Vec<NodeId> = graph.non_isolated_nodes().collect();
        let (mut corpus, _) = engine.generate_with_manager(dg.base(), &model, &manager, &starts);
        let mut refresher = WalkRefresher::new(&corpus, graph.num_nodes(), walk_cfg.walk_length, 5);

        let mut maintain_time = Duration::ZERO;
        let mut refresh_time = Duration::ZERO;
        let mut walks_refreshed = 0usize;
        let mut states_rebuilt = 0usize;
        let mut chains_preserved = 0usize;
        let mut batches = 0usize;

        for chunk in stream.chunks(batch_size) {
            batches += 1;
            let batch = UpdateBatch::from_mutations(chunk.to_vec());
            let t = Instant::now();
            let r = if full_rebuild {
                // Strawman: apply the batch, then rebuild the whole manager.
                let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
                maintainer.flush(&mut dg, &mut manager, &model);
                manager = SamplerManager::new(dg.base(), &model, kind, 0);
                r
            } else {
                maintainer.apply_batch(&mut dg, &mut manager, &model, &batch)
            };
            maintain_time += t.elapsed();
            states_rebuilt += r.maintenance.states_rebuilt;
            chains_preserved += r.maintenance.chains_preserved;

            let mut touched = r.weight_touched.clone();
            touched.extend_from_slice(&r.topology_touched);
            touched.sort_unstable();
            touched.dedup();
            if !touched.is_empty() {
                let (stats, dur) =
                    refresher.refresh(&mut corpus, dg.base(), &model, &manager, &touched);
                refresh_time += dur;
                walks_refreshed += stats.walks_refreshed;
            }
        }

        let throughput = stream.len() as f64 / maintain_time.as_secs_f64().max(1e-9);
        table.add_row(&[
            label.to_string(),
            format!("{throughput:.0}"),
            format!("{:.2}", maintain_time.as_secs_f64() * 1e3 / batches as f64),
            format!("{:.2}", refresh_time.as_secs_f64() * 1e3 / batches as f64),
            format!("{walks_refreshed}"),
            format!("{states_rebuilt}"),
            format!("{chains_preserved}"),
        ]);
    }
    emit(&table, "exp_dynamic_streaming");
}

fn main() {
    let cfg = HarnessConfig::from_env();
    // Barabási–Albert: heavy-tailed degrees give the degree sweep its range.
    let graph = barabasi_albert(cfg.nodes(20_000), 8, true, 21);
    println!(
        "dynamic-update experiment over BA graph: {} nodes, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );
    let reps = if cfg.quick { 64 } else { 256 };
    part1_cost_vs_degree(&graph, reps);
    part2_streaming(&graph, &cfg);
}
