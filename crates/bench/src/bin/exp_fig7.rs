//! Figure 7: parameter sensitivity of the edge samplers — walk generation time
//! as one node2vec hyper-parameter (p or q) sweeps over [0.25, 10] with the
//! other fixed at 1, for node2vec, edge2vec and fairwalk.
//!
//! Expected shape (paper): alias and the M-H sampler are flat; rejection,
//! KnightKing and the memory-aware sampler degrade as p or q shrinks (the
//! acceptance ratio drops); KnightKing's outlier folding helps for p (a single
//! outlier) far more than for q (many outliers).

use uninet_bench::{emit, hetero_graph, social_graph, HarnessConfig};
use uninet_core::{ModelSpec, Table};
use uninet_graph::Graph;
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::{WalkEngine, WalkEngineConfig};

fn samplers() -> Vec<(&'static str, EdgeSamplerKind)> {
    vec![
        ("Rejection", EdgeSamplerKind::Rejection),
        ("Memory-Aware", EdgeSamplerKind::MemoryAware),
        ("KnightKing", EdgeSamplerKind::KnightKing),
        (
            "UniNet Random",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        (
            "UniNet High-Weight",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
        ),
        ("Alias", EdgeSamplerKind::Alias),
    ]
}

fn sweep(
    table: &mut Table,
    cfg: &HarnessConfig,
    panel: &str,
    graph: &Graph,
    make_spec: &dyn Fn(f32, f32) -> ModelSpec,
    vary_p: bool,
) {
    let values: Vec<f32> = if cfg.quick {
        vec![0.25, 1.0, 4.0, 10.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    };
    for (label, kind) in samplers() {
        for &value in &values {
            let (p, q) = if vary_p { (value, 1.0) } else { (1.0, value) };
            let spec = make_spec(p, q);
            let model = spec.instantiate(graph).expect("benchmark specs are valid");
            let walk_cfg = WalkEngineConfig::default()
                .with_num_walks(cfg.num_walks().min(3))
                .with_walk_length(cfg.walk_length().min(40))
                .with_threads(16)
                .with_sampler(kind);
            let (_, timing) = WalkEngine::new(walk_cfg).generate(graph, model.as_ref());
            table.add_row(&[
                panel.to_string(),
                label.to_string(),
                if vary_p {
                    format!("p={value}")
                } else {
                    format!("q={value}")
                },
                format!("{:.3}", (timing.init + timing.walk).as_secs_f64()),
            ]);
        }
    }
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let livejournal = social_graph(cfg.nodes(20_000), 18.0, 31);
    let youtube = social_graph(cfg.nodes(15_000), 8.0, 32);
    let youtube_hetero = uninet_graph::generators::heterogenize(&youtube, 3, 2, 33);
    let aminer = hetero_graph(cfg.nodes(12_000), 6.0, 34);

    let mut table = Table::new(
        "Figure 7 — parameter sensitivity of edge samplers (total walk time, seconds)",
        &["panel", "sampler", "parameter", "time (s)"],
    );

    let node2vec = |p: f32, q: f32| ModelSpec::Node2Vec { p, q };
    let edge2vec = |p: f32, q: f32| ModelSpec::Edge2Vec { p, q };
    let fairwalk = |p: f32, q: f32| ModelSpec::FairWalk { p, q };

    sweep(
        &mut table,
        &cfg,
        "(a) node2vec / LiveJournal-like, vary p",
        &livejournal,
        &node2vec,
        true,
    );
    sweep(
        &mut table,
        &cfg,
        "(b) node2vec / LiveJournal-like, vary q",
        &livejournal,
        &node2vec,
        false,
    );
    sweep(
        &mut table,
        &cfg,
        "(c) edge2vec / AMiner-like, vary p",
        &aminer,
        &edge2vec,
        true,
    );
    sweep(
        &mut table,
        &cfg,
        "(d) edge2vec / AMiner-like, vary q",
        &aminer,
        &edge2vec,
        false,
    );
    sweep(
        &mut table,
        &cfg,
        "(e) node2vec / YouTube-like, vary p",
        &youtube,
        &node2vec,
        true,
    );
    sweep(
        &mut table,
        &cfg,
        "(f) node2vec / YouTube-like, vary q",
        &youtube,
        &node2vec,
        false,
    );
    sweep(
        &mut table,
        &cfg,
        "(g) fairwalk / YouTube-like, vary p",
        &youtube_hetero,
        &fairwalk,
        true,
    );
    sweep(
        &mut table,
        &cfg,
        "(h) fairwalk / YouTube-like, vary q",
        &youtube_hetero,
        &fairwalk,
        false,
    );

    emit(&table, "fig7");
}
