//! Table VI: time cost (Ti / Tw / Tl / Tt) of the five NRL models under three
//! system configurations — the open-source-style baseline (original sampler,
//! single-threaded), UniNet (Orig) (original sampler inside the parallel
//! framework) and UniNet (M-H).
//!
//! Expected shape (paper): UniNet (M-H) has the smallest total time; the gap
//! vs UniNet (Orig) comes mostly from the initialization phase (alias
//! materialization for node2vec) and the per-step sampling cost (direct
//! sampling for the other models); the open-source-style column is slower
//! still because it lacks parallel walk generation.

use uninet_bench::{
    emit, small_heterogeneous_suite, small_homogeneous_suite, BenchDataset, HarnessConfig,
};
use uninet_core::{
    baselines, format_duration, format_speedup, BaselineKind, Engine, ModelSpec, Table,
    UniNetConfig,
};

fn main() {
    let cfg = HarnessConfig::from_env();

    let mut base = UniNetConfig::default();
    base.walk.num_walks = cfg.num_walks();
    base.walk.walk_length = cfg.walk_length();
    base.walk.num_threads = 16;
    base.embedding.dim = if cfg.quick { 32 } else { 64 };
    base.embedding.epochs = 1;
    base.embedding.num_threads = 16;

    let mut table = Table::new(
        "Table VI — time cost of the five NRL models under three system configurations",
        &[
            "model",
            "dataset",
            "system",
            "Ti",
            "Tw",
            "Tl",
            "Tt",
            "speedup vs Open",
            "speedup vs Orig",
        ],
    );

    let homogeneous = small_homogeneous_suite(&cfg);
    let heterogeneous = small_heterogeneous_suite(&cfg);

    let workloads: Vec<(ModelSpec, &[BenchDataset])> = vec![
        (ModelSpec::DeepWalk, &homogeneous[..]),
        (ModelSpec::Node2Vec { p: 0.25, q: 4.0 }, &homogeneous[..]),
        (
            ModelSpec::MetaPath2Vec {
                metapath: vec![0, 1, 2, 1, 0],
            },
            &heterogeneous[..],
        ),
        (ModelSpec::Edge2Vec { p: 0.25, q: 0.25 }, &heterogeneous[..]),
        (ModelSpec::FairWalk { p: 1.0, q: 1.0 }, &heterogeneous[..]),
    ];

    for (spec, datasets) in workloads {
        let datasets: Vec<&BenchDataset> = if cfg.quick {
            datasets.iter().take(2).collect()
        } else {
            datasets.iter().collect()
        };
        for ds in datasets {
            let mut totals = Vec::new();
            let mut rows = Vec::new();
            for kind in BaselineKind::ALL {
                let run_cfg = baselines::configure(&base, &spec, kind);
                let engine = Engine::builder()
                    .graph(ds.graph.clone())
                    .model(spec.clone())
                    .config(run_cfg)
                    .build()
                    .expect("benchmark configuration is valid");
                let result = engine.train().expect("engine is idle");
                totals.push(result.timing);
                rows.push((kind, result.timing));
            }
            for (kind, timing) in rows {
                table.add_row(&[
                    spec.name().to_string(),
                    ds.name.to_string(),
                    kind.label().to_string(),
                    format_duration(timing.init),
                    format_duration(timing.walk),
                    format_duration(timing.learn),
                    format_duration(timing.total()),
                    format_speedup(timing.speedup_over(&totals[0])),
                    format_speedup(timing.speedup_over(&totals[1])),
                ]);
            }
        }
    }
    emit(&table, "table6");
}
