//! Figure 1: the ratio of KL divergences obtained with random vs high-weight
//! initialization of the M-H edge sampler, over randomly generated target
//! distributions with controlled shape (n, t, πmax/πmin).
//!
//! The paper's claim: the ratio crosses 1 at πmax/πmin ≈ n/t, and high-weight
//! initialization wins (ratio > 1) for skewed distributions.

use uninet_bench::{emit, HarnessConfig};
use uninet_core::Table;
use uninet_sampler::kl::{run_init_simulation, InitSimulationConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    // The paper averages 1000 distributions x 20 repeats; scale down by default.
    let (num_distributions, repeats) = if cfg.quick { (30, 3) } else { (200, 10) };

    // (n, list of t values) mirroring Fig. 1(a)-(d); n = 10000 only at full scale.
    let mut grid: Vec<(usize, Vec<usize>)> = vec![
        (10, vec![1, 2, 5]),
        (100, vec![1, 20, 50]),
        (1000, vec![1, 200, 500]),
    ];
    if !cfg.quick && cfg.scale >= 1.0 {
        grid.push((10_000, vec![1, 2_000, 5_000]));
    }
    let ratios: [f64; 7] = [1.1, 2.0, 5.0, 10.0, 100.0, 1e3, 1e4];

    let mut table = Table::new(
        "Figure 1 — KL_random / KL_high-weight ratio of M-H initialization strategies",
        &[
            "n",
            "t",
            "pi_max/pi_min",
            "n/t",
            "KL_r",
            "KL_h",
            "KL_r/KL_h",
            "high-weight wins",
        ],
    );

    for (n, ts) in grid {
        for &t in &ts {
            for &ratio in &ratios {
                let sim = InitSimulationConfig {
                    n,
                    t,
                    max_min_ratio: ratio,
                    num_distributions,
                    repeats,
                    samples_per_n: 5,
                    seed: 42 ^ (n as u64) ^ (t as u64) << 16,
                };
                let result = run_init_simulation(&sim);
                let r = result.ratio();
                table.add_row(&[
                    n.to_string(),
                    t.to_string(),
                    format!("{ratio:.1}"),
                    format!("{:.1}", n as f64 / t as f64),
                    format!("{:.5}", result.kl_random),
                    format!("{:.5}", result.kl_high_weight),
                    format!("{r:.3}"),
                    if r > 1.0 {
                        "yes".to_string()
                    } else {
                        "no".to_string()
                    },
                ]);
            }
        }
    }
    emit(&table, "fig1");
    println!(
        "Expected shape (paper): the ratio exceeds 1 once pi_max/pi_min grows past n/t,\n\
         i.e. high-weight initialization is more accurate exactly for skewed targets."
    );
}
