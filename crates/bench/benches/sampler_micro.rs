//! Criterion micro-benchmarks of the individual edge samplers: per-draw cost
//! of alias, direct, rejection and M-H sampling over neighborhoods of varying
//! degree — the raw numbers behind the complexity claims of Section III-A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uninet_sampler::{direct_sample, AliasTable, InitStrategy, MhChain, RejectionSampler};

fn weights(degree: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..degree).map(|_| rng.gen_range(0.5f32..4.0)).collect()
}

fn bench_single_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_draw");
    for degree in [16usize, 256, 4096] {
        let w = weights(degree, degree as u64);

        group.bench_with_input(BenchmarkId::new("alias", degree), &w, |b, w| {
            let table = AliasTable::new(w);
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| table.sample(&mut rng))
        });

        group.bench_with_input(BenchmarkId::new("direct", degree), &w, |b, w| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| direct_sample(w, &mut rng))
        });

        group.bench_with_input(BenchmarkId::new("rejection", degree), &w, |b, w| {
            let sampler = RejectionSampler::new(w, 4.0);
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| sampler.sample(|k| w[k], &mut rng))
        });

        group.bench_with_input(
            BenchmarkId::new("metropolis_hastings", degree),
            &w,
            |b, w| {
                let mut chain = MhChain::new();
                let mut rng = SmallRng::seed_from_u64(4);
                let wf = |k: usize| w[k];
                b.iter(|| chain.step(w.len(), &wf, InitStrategy::high_weight_exact(), &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_construction");
    for degree in [256usize, 4096] {
        let w = weights(degree, degree as u64 + 7);
        group.bench_with_input(BenchmarkId::new("alias_table_build", degree), &w, |b, w| {
            b.iter(|| AliasTable::new(w))
        });
        group.bench_with_input(BenchmarkId::new("mh_chain_init", degree), &w, |b, w| {
            let mut rng = SmallRng::seed_from_u64(5);
            b.iter(|| {
                let mut chain = MhChain::new();
                let wf = |k: usize| w[k];
                chain.initialize(w.len(), &wf, InitStrategy::high_weight_exact(), &mut rng);
                chain
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_single_draw, bench_construction
}
criterion_main!(benches);
