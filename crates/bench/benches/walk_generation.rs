//! Criterion benchmarks of whole-corpus random-walk generation for the five
//! NRL models and the main sampler strategies (the Tw column of Table VI at
//! micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use uninet_graph::generators::{heterogenize, rmat, RmatConfig};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::{DeepWalk, FairWalk, MetaPath2Vec, Node2Vec};
use uninet_walker::{RandomWalkModel, WalkEngine, WalkEngineConfig};

fn bench_graph() -> uninet_graph::Graph {
    heterogenize(
        &rmat(&RmatConfig {
            num_nodes: 2_000,
            num_edges: 16_000,
            weighted: true,
            seed: 99,
            ..Default::default()
        }),
        3,
        2,
        5,
    )
}

fn engine(kind: EdgeSamplerKind) -> WalkEngine {
    WalkEngine::new(
        WalkEngineConfig::default()
            .with_num_walks(2)
            .with_walk_length(40)
            .with_threads(8)
            .with_sampler(kind),
    )
}

fn bench_samplers_node2vec(c: &mut Criterion) {
    let graph = bench_graph();
    let model = Node2Vec::new(0.25, 4.0);
    let mut group = c.benchmark_group("node2vec_walks_by_sampler");
    for (name, kind) in [
        (
            "mh_high_weight",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
        ),
        (
            "mh_random",
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        ),
        ("alias", EdgeSamplerKind::Alias),
        ("direct", EdgeSamplerKind::Direct),
        ("rejection", EdgeSamplerKind::Rejection),
        ("knightking", EdgeSamplerKind::KnightKing),
        ("memory_aware", EdgeSamplerKind::MemoryAware),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            let eng = engine(kind);
            b.iter(|| eng.generate(&graph, &model))
        });
    }
    group.finish();
}

fn bench_models_with_mh(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("models_with_mh_sampler");
    let deepwalk = DeepWalk::new();
    let node2vec = Node2Vec::new(0.25, 4.0);
    let metapath = MetaPath2Vec::new(uninet_graph::Metapath::new(vec![0, 1, 2, 1, 0]));
    let fairwalk = FairWalk::new(&graph, 1.0, 1.0);
    let models: Vec<(&str, &dyn RandomWalkModel)> = vec![
        ("deepwalk", &deepwalk),
        ("node2vec", &node2vec),
        ("metapath2vec", &metapath),
        ("fairwalk", &fairwalk),
    ];
    let eng = engine(EdgeSamplerKind::MetropolisHastings(
        InitStrategy::high_weight_exact(),
    ));
    for (name, model) in models {
        group.bench_function(name, |b| b.iter(|| eng.generate(&graph, model)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_samplers_node2vec, bench_models_with_mh
}
criterion_main!(benches);
