//! Criterion bench: per-batch sampler maintenance cost under streaming edge
//! reweights, comparing UniNet's M-H sampler (O(1)/update: nothing to
//! rebuild), incremental alias maintenance (O(deg) per affected state) and
//! the full-rebuild strawman (fresh `SamplerManager` per batch), across batch
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uninet_dyngraph::{DynamicGraph, IncrementalMaintainer, UpdateBatch};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::{Graph, NodeId};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::DeepWalk;
use uninet_walker::SamplerManager;

fn reweight_batch(graph: &Graph, size: usize, seed: u64) -> UpdateBatch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.num_nodes() as NodeId;
    let mut batch = UpdateBatch::new();
    while batch.len() < size {
        let src = rng.gen_range(0..n);
        let deg = graph.degree(src);
        if deg == 0 {
            continue;
        }
        let dst = graph.neighbor_at(src, rng.gen_range(0..deg));
        batch.update_weight(src, dst, rng.gen_range(0.5f32..4.0));
    }
    batch
}

fn bench_batch_maintenance(c: &mut Criterion) {
    let graph = barabasi_albert(4_000, 8, true, 3);
    let model = DeepWalk::new();
    let maintainer = IncrementalMaintainer::default();
    let mut group = c.benchmark_group("batch_maintenance");
    group.sample_size(10);

    for batch_size in [16usize, 64, 256] {
        let batch = reweight_batch(&graph, batch_size, batch_size as u64);

        group.bench_with_input(
            BenchmarkId::new("mh_incremental", batch_size),
            &batch,
            |b, batch| {
                let mut dg = DynamicGraph::new(graph.clone(), true);
                let mut manager = SamplerManager::new(
                    dg.base(),
                    &model,
                    EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
                    0,
                );
                b.iter(|| maintainer.apply_batch(&mut dg, &mut manager, &model, batch))
            },
        );

        group.bench_with_input(
            BenchmarkId::new("alias_incremental", batch_size),
            &batch,
            |b, batch| {
                let mut dg = DynamicGraph::new(graph.clone(), true);
                let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);
                b.iter(|| maintainer.apply_batch(&mut dg, &mut manager, &model, batch))
            },
        );

        group.bench_with_input(
            BenchmarkId::new("alias_full_rebuild", batch_size),
            &batch,
            |b, batch| {
                let mut dg = DynamicGraph::new(graph.clone(), true);
                let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);
                b.iter(|| {
                    maintainer.apply_batch(&mut dg, &mut manager, &model, batch);
                    manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_maintenance
}
criterion_main!(benches);
