//! Criterion benchmark of the full pipeline (walks + word2vec) for DeepWalk
//! and node2vec — a scaled-down version of the Tt column of Table VI.

use criterion::{criterion_group, criterion_main, Criterion};

use uninet_core::{Engine, ModelSpec, UniNetConfig};
use uninet_graph::generators::{rmat, RmatConfig};

fn pipeline_config() -> UniNetConfig {
    let mut cfg = UniNetConfig::default();
    cfg.walk.num_walks = 2;
    cfg.walk.walk_length = 30;
    cfg.walk.num_threads = 8;
    cfg.embedding.dim = 32;
    cfg.embedding.epochs = 1;
    cfg.embedding.num_threads = 8;
    cfg.embedding.window = 5;
    cfg
}

fn bench_end_to_end(c: &mut Criterion) {
    let graph = rmat(&RmatConfig {
        num_nodes: 1_000,
        num_edges: 8_000,
        weighted: true,
        seed: 4,
        ..Default::default()
    });
    let engine_for = |spec: ModelSpec| {
        Engine::builder()
            .graph(graph.clone())
            .model(spec)
            .config(pipeline_config())
            .build()
            .expect("benchmark configuration is valid")
    };
    let mut group = c.benchmark_group("end_to_end_pipeline");
    let deepwalk = engine_for(ModelSpec::DeepWalk);
    group.bench_function("deepwalk", |b| {
        b.iter(|| deepwalk.train().expect("engine is idle"))
    });
    let node2vec = engine_for(ModelSpec::Node2Vec { p: 0.25, q: 4.0 });
    group.bench_function("node2vec", |b| {
        b.iter(|| node2vec.train().expect("engine is idle"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
