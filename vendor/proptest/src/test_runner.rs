//! Test-runner plumbing: configuration, case outcome, deterministic RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful random cases required per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw a fresh case, don't count this one.
    Reject(&'static str),
    /// `prop_assert!` failed: the property is falsified.
    Fail(String),
}

/// Deterministic RNG used to generate case inputs.
///
/// Seeded from the test's full module path so every test gets a distinct but
/// reproducible stream. Set `PROPTEST_SEED` to perturb all streams at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = extra.parse::<u64>() {
                h ^= s.wrapping_mul(0x9E3779B97F4A7C15);
            }
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}
