//! Everything `use proptest::prelude::*` is expected to bring into scope.

pub use crate::prop;
pub use crate::strategy::{any, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
