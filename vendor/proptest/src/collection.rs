//! Collection strategies: `vec` and `btree_set` with a size range.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end_excl: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = self.end_excl.saturating_sub(self.start).max(1);
        self.start + rng.below(span)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end_excl: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end_excl: n + 1,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` with elements from `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet`s whose cardinality is drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut set = BTreeSet::new();
        // The element domain may be smaller than the target cardinality, so
        // bound the number of attempts rather than looping forever.
        for _ in 0..target * 16 + 16 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Generates a `BTreeSet` with elements from `element` and cardinality in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
