//! Minimal offline shim of the `proptest` API surface used by this workspace.
//!
//! It implements randomized (non-shrinking) property testing: the [`proptest!`]
//! macro runs each property for `ProptestConfig::cases` deterministic random
//! cases. Strategies support numeric ranges, tuples, `Just`, `any::<T>()`,
//! `prop_map`, `prop_oneof!` and `prop::collection::{vec, btree_set}` — the
//! exact combinators the workspace's test-suites use. Failing cases are
//! reported with their generated inputs (no shrinking is attempted).

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` paths resolve.
pub mod prop {
    pub use crate::collection;
}

/// The macro-based entry points live at the crate root via `#[macro_export]`;
/// `prelude` re-exports them for `use proptest::prelude::*` consumers.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases.saturating_mul(16).max(64) {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => { ran += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs: {}",
                                ran + 1,
                                stringify!($name),
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current case (drawing a fresh one) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}
