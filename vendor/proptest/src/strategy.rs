//! Value-generation strategies: ranges, tuples, `Just`, `any`, `prop_map`,
//! unions. Non-shrinking: a strategy is just a deterministic function from an
//! RNG state to a value.

use crate::test_runner::TestRng;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; generation retries until `f` accepts (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
}

/// Object-safe strategy used by [`Union`] / `prop_oneof!`.
pub trait DynStrategy {
    /// The type of generated values.
    type Value;
    /// Draws one value through the trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among boxed strategies with a common value type.
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len());
        self.arms[k].generate_dyn(rng)
    }
}
