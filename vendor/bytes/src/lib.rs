//! Minimal offline shim of the `bytes` crate: little-endian cursor reads over
//! `&[u8]` ([`Buf`]) and an appendable byte buffer ([`BytesMut`]/[`Bytes`]).
//! Only the methods used by the graph binary snapshot format are provided.

use std::ops::Deref;

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential little-endian writes into a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"HDR!");
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let bytes = buf.freeze();
        let mut cur: &[u8] = &bytes;
        assert_eq!(cur.remaining(), bytes.len());
        let mut hdr = [0u8; 4];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.get_u8(), 3);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let data = [1u8];
        let mut cur: &[u8] = &data;
        let _ = cur.get_u32_le();
    }
}
