//! Minimal offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! drop-in replacement for the pieces the workspace relies on: the [`Rng`] and
//! [`SeedableRng`] traits (`gen`, `gen_range`, `gen_bool`, `seed_from_u64`) and
//! [`rngs::SmallRng`], implemented as xoshiro256++ seeded via SplitMix64 —
//! the same algorithm family the real `SmallRng` uses on 64-bit targets.

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` (the shim's equivalent of
/// sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded draw (Lemire); bias is < span / 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let f = <$t as Standard>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing random value generation, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / draws as f64;
            assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }
}
