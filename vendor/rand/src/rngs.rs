//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG: xoshiro256++.
///
/// Mirrors `rand::rngs::SmallRng` on 64-bit platforms. Not suitable for
/// cryptographic purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias so code written against `rand::rngs::StdRng` also compiles.
pub type StdRng = SmallRng;
