//! Minimal offline shim of `crossbeam::thread::scope`, backed by
//! `std::thread::scope` (stable since Rust 1.63). Only the scoped-spawn API
//! used by the walker engine and the embedding trainer is provided.

pub mod thread {
    use std::any::Any;

    /// Result of a scope run or a join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope in which threads borrowing the environment can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the environment.
    ///
    /// Unlike `std::thread::scope`, panics of child threads whose handles were
    /// joined are reported through the handle's `join` result; this function
    /// returns `Ok` as long as the closure itself did not panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_are_captured_by_join() {
        let result = thread::scope(|scope| {
            let h = scope.spawn(|_| -> () { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
