//! Minimal offline shim of the `criterion` benchmarking API.
//!
//! Provides [`Criterion`], [`BenchmarkId`], benchmark groups, `b.iter(..)`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated loop reporting the mean wall-clock time per iteration —
//! enough for the relative comparisons this workspace's benches make, without
//! the statistics machinery of the real crate.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) each benchmark body runs exactly once, keeping test runs
//! fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split over the sample iterations).
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode =
            std::env::args().any(|a| a == "--test") || std::env::var("CRITERION_TEST_MODE").is_ok();
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; the shim's time budget is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.test_mode, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.test_mode,
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.test_mode,
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to each benchmark body to time its hot loop.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result_ns = Some(0.0);
            return;
        }
        // Calibrate: find an iteration count that takes roughly
        // TARGET_MEASURE / sample_size per sample.
        let mut iters: u64 = 1;
        let per_sample = TARGET_MEASURE / self.sample_size as u32;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= per_sample / 4 || iters >= 1 << 30 {
                let scale = if elapsed.as_nanos() == 0 {
                    4.0
                } else {
                    per_sample.as_nanos() as f64 / elapsed.as_nanos() as f64
                };
                iters = ((iters as f64 * scale.clamp(0.25, 4.0)) as u64).max(1);
                break;
            }
            iters *= 4;
        }
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
            total += ns;
        }
        // Report the mean; the minimum is tracked to keep the loop honest.
        let _ = best;
        self.result_ns = Some(total / self.sample_size as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        sample_size,
        result_ns: None,
    };
    f(&mut b);
    match b.result_ns {
        Some(ns) if !test_mode => println!("{id:<60} {:>14} ns/iter", format_ns(ns)),
        _ => {}
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e7 {
        format!("{:.2e}", ns)
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        std::env::set_var("CRITERION_TEST_MODE", "1");
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 1);
    }

    #[test]
    fn group_and_ids_format() {
        let id = BenchmarkId::new("alias", 256);
        assert_eq!(format!("{id}"), "alias/256");
        let id2 = BenchmarkId::from_parameter(42);
        assert_eq!(format!("{id2}"), "42");
    }
}
